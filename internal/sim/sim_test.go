package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/workload"
)

// tinyFixture builds a 2-node catalog with explicit, hand-checkable
// costs close to the Figure 1 example.
func tinyFixture(t *testing.T) (*catalog.Catalog, []costmodel.Template) {
	t.Helper()
	c := &catalog.Catalog{
		Relations: []catalog.Relation{{ID: 0, SizeMB: 10, Attrs: 10}, {ID: 1, SizeMB: 5, Attrs: 10}},
		Nodes: []*catalog.Node{
			{ID: 0, CPUGHz: 2, IOMBps: 40, BufferMB: 8, HashJoin: true, Holds: map[int]bool{0: true, 1: true}},
			{ID: 1, CPUGHz: 1, IOMBps: 10, BufferMB: 4, HashJoin: false, Holds: map[int]bool{0: true, 1: true}},
		},
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1},
		{Class: 1, Relations: []int{1}, Selectivity: 1},
	}
	return c, ts
}

func TestConfigValidation(t *testing.T) {
	c, ts := tinyFixture(t)
	if _, err := New(Config{Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0)); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(Config{Catalog: c, PeriodMs: 500}, alloc.NewGreedy(nil, 0)); err == nil {
		t.Error("empty templates accepted")
	}
	if _, err := New(Config{Catalog: c, Templates: ts}, alloc.NewGreedy(nil, 0)); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, nil); err == nil {
		t.Error("nil mechanism accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	c, ts := tinyFixture(t)
	fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := fed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if col.Completed() != 0 {
		t.Error("completed queries from empty arrival stream")
	}
}

func TestUnsortedArrivalsRejected(t *testing.T) {
	c, ts := tinyFixture(t)
	fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Run([]workload.Arrival{{At: 100}, {At: 50}}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}

func TestSingleQueryLifecycle(t *testing.T) {
	c, ts := tinyFixture(t)
	fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := fed.Run([]workload.Arrival{{At: 10, Class: 0, Origin: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if col.Completed() != 1 || col.Dropped() != 0 {
		t.Fatalf("completed=%d dropped=%d", col.Completed(), col.Dropped())
	}
	s := col.Samples()[0]
	if s.Node != 0 {
		t.Errorf("greedy should pick the fast node, got %d", s.Node)
	}
	model := costmodel.New(c)
	want := model.Estimate(c.Nodes[0], ts[0])
	if got := float64(s.ResponseMs()); math.Abs(got-want) > 1.5 {
		t.Errorf("response %g ms, want ~%g (pure execution)", got, want)
	}
	if s.Origin != 1 || s.Class != 0 || s.ArrivalMs != 10 {
		t.Errorf("sample metadata: %+v", s)
	}
}

func TestFIFOQueuePerNode(t *testing.T) {
	// Two same-class queries forced onto the single capable node must
	// run back-to-back: second response ≈ 2× first.
	c, ts := tinyFixture(t)
	// Remove relation 0 from node 1 so only node 0 can run class 0.
	delete(c.Nodes[1].Holds, 0)
	fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := fed.Run([]workload.Arrival{
		{At: 0, Class: 0}, {At: 0, Class: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := col.Samples()
	if len(ss) != 2 {
		t.Fatalf("completed %d", len(ss))
	}
	r0, r1 := ss[0].ResponseMs(), ss[1].ResponseMs()
	if r1 < r0*2-3 || r1 > r0*2+3 {
		t.Errorf("FIFO responses %d then %d, want second ≈ 2x first", r0, r1)
	}
}

func TestNetworkLatencyAddsToResponse(t *testing.T) {
	c, ts := tinyFixture(t)
	base, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	colA, err := base.Run([]workload.Arrival{{At: 0, Class: 0}})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500, NetworkLatencyMs: 40}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	colB, err := lat.Run([]workload.Arrival{{At: 0, Class: 0}})
	if err != nil {
		t.Fatal(err)
	}
	diff := colB.Samples()[0].ResponseMs() - colA.Samples()[0].ResponseMs()
	if diff != 40 {
		t.Errorf("latency added %d ms, want 40", diff)
	}
}

func TestInfeasibleEverywhereDropsAfterMaxResubmits(t *testing.T) {
	c, ts := tinyFixture(t)
	delete(c.Nodes[0].Holds, 0)
	delete(c.Nodes[1].Holds, 0)
	fed, err := New(Config{
		Catalog: c, Templates: ts, PeriodMs: 500, MaxResubmits: 3, HardCapMs: 60000,
	}, alloc.NewGreedy(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := fed.Run([]workload.Arrival{{At: 0, Class: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if col.Dropped() != 1 || col.Completed() != 0 {
		t.Errorf("dropped=%d completed=%d, want 1/0", col.Dropped(), col.Completed())
	}
}

func TestQANTRunsToCompletion(t *testing.T) {
	c, ts := tinyFixture(t)
	fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewQANT(market.DefaultConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var as []workload.Arrival
	for i := 0; i < 50; i++ {
		as = append(as, workload.Arrival{At: int64(i * 200), Class: rng.Intn(2), Origin: rng.Intn(2)})
	}
	col, err := fed.Run(as)
	if err != nil {
		t.Fatal(err)
	}
	if col.Completed()+col.Dropped() != 50 {
		t.Fatalf("accounting: %d + %d != 50", col.Completed(), col.Dropped())
	}
	if col.Completed() < 45 {
		t.Errorf("only %d of 50 completed on an underloaded system", col.Completed())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	c, ts := tinyFixture(t)
	run := func() float64 {
		fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewQANT(market.DefaultConfig(2)))
		if err != nil {
			t.Fatal(err)
		}
		var as []workload.Arrival
		for i := 0; i < 30; i++ {
			as = append(as, workload.Arrival{At: int64(i * 150), Class: i % 2})
		}
		col, err := fed.Run(as)
		if err != nil {
			t.Fatal(err)
		}
		return col.Summarize().MeanRespMs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged: %g vs %g", a, b)
	}
}

func TestEstimateCapacityPositive(t *testing.T) {
	c, ts := tinyFixture(t)
	cap := EstimateCapacity(c, ts, []float64{1, 1})
	if cap <= 0 {
		t.Fatalf("capacity = %g", cap)
	}
	// Capacity of class 0 alone must be below the two-class blend's
	// upper bound (the cheap class raises the blended rate).
	cap0 := EstimateCapacity(c, ts, []float64{1, 0})
	if cap0 <= 0 || cap0 > cap*2 {
		t.Errorf("single-class capacity %g vs mix %g looks wrong", cap0, cap)
	}
	if got := EstimateCapacity(c, ts, []float64{0, 0}); got != 0 {
		t.Errorf("zero-weight capacity = %g, want 0", got)
	}
}

// TestCapacityMatchesSimulation cross-checks the analytic capacity
// estimate against the simulator: at 70% of estimated capacity the
// system must keep up (bounded response times), at 300% it must not.
func TestCapacityMatchesSimulation(t *testing.T) {
	c, ts := tinyFixture(t)
	capacity := EstimateCapacity(c, ts, []float64{1, 0})
	mk := func(frac float64) []workload.Arrival {
		rate := capacity * frac // queries per second
		gap := int64(1000 / rate)
		if gap < 1 {
			gap = 1
		}
		var as []workload.Arrival
		for at := int64(0); at < 30000; at += gap {
			as = append(as, workload.Arrival{At: at, Class: 0})
		}
		return as
	}
	run := func(frac float64) float64 {
		fed, err := New(Config{Catalog: c, Templates: ts, PeriodMs: 500}, alloc.NewGreedy(nil, 0))
		if err != nil {
			t.Fatal(err)
		}
		col, err := fed.Run(mk(frac))
		if err != nil {
			t.Fatal(err)
		}
		return col.Summarize().MeanRespMs
	}
	under := run(0.7)
	over := run(3.0)
	if over < under*3 {
		t.Errorf("overload mean %.0f ms not clearly above underload %.0f ms", over, under)
	}
}
