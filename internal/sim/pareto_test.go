package sim

import (
	"testing"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/vector"
	"github.com/qamarket/qamarket/internal/workload"
)

// figure1Costs are the paper's exact per-node execution times.
var figure1Costs = [][]float64{
	{400, 100}, // N1: q1, q2
	{450, 500}, // N2
}

// figure1System builds a two-node federation with the exact Figure 1
// costs via the simulator's cost override.
func figure1System(t *testing.T, mech alloc.Mechanism) *Federation {
	t.Helper()
	cat := &catalog.Catalog{
		Relations: []catalog.Relation{{ID: 0, SizeMB: 10, Attrs: 10}, {ID: 1, SizeMB: 10, Attrs: 10}},
		Nodes: []*catalog.Node{
			{ID: 0, CPUGHz: 2, IOMBps: 40, BufferMB: 8, HashJoin: true, Holds: map[int]bool{0: true, 1: true}},
			{ID: 1, CPUGHz: 2, IOMBps: 40, BufferMB: 8, HashJoin: true, Holds: map[int]bool{0: true, 1: true}},
		},
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1},
		{Class: 1, Relations: []int{1}, Selectivity: 1},
	}
	fed, err := New(Config{
		Catalog: cat, Templates: ts, PeriodMs: 500,
		CostOverride: figure1Costs,
	}, mech)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestQANTConvergesToParetoOptimalPeriods is the end-to-end version of
// the paper's FTWE claim: run QA-NT on the exact Figure 1 system under
// the paper's steady overload (2×q1 + 6×q2 per 500 ms period), extract
// the realized per-period supply profile once prices have settled, and
// verify with the brute-force economics checker that the profile is
// Pareto optimal for the per-period demand in most settled periods.
func TestQANTConvergesToParetoOptimalPeriods(t *testing.T) {
	cfg := market.DefaultConfig(2)
	cfg.Lambda = 0.05 // finer steps estimate equilibrium prices better (eq. 6)
	fed := figure1System(t, alloc.NewQANT(cfg))

	var arrivals []workload.Arrival
	const periods = 60
	for p := int64(0); p < periods; p++ {
		at := p * 500
		for i := 0; i < 2; i++ {
			arrivals = append(arrivals, workload.Arrival{At: at, Class: 0, Origin: 0})
		}
		for i := 0; i < 6; i++ {
			arrivals = append(arrivals, workload.Arrival{At: at, Class: 1, Origin: 0})
		}
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}

	type key struct{ period, node int }
	startedAt := map[key]vector.Quantity{}
	for _, s := range col.Samples() {
		p := int(s.StartMs / 500)
		k := key{p, s.Node}
		if startedAt[k] == nil {
			startedAt[k] = vector.New(2)
		}
		startedAt[k][s.Class]++
	}
	demand := []vector.Quantity{{2, 6}}
	sets := []economics.EnumerableSupplySet{
		economics.TimeBudgetSupplySet{Cost: figure1Costs[0], Budget: 500},
		economics.TimeBudgetSupplySet{Cost: figure1Costs[1], Budget: 500},
	}
	prefs := []economics.Preference{economics.ThroughputPreference}

	optimal, checked := 0, 0
	for p := periods / 2; p < periods-5; p++ {
		s0 := startedAt[key{p, 0}]
		s1 := startedAt[key{p, 1}]
		if s0 == nil {
			s0 = vector.New(2)
		}
		if s1 == nil {
			s1 = vector.New(2)
		}
		agg := s0.Add(s1)
		if agg.Total() == 0 {
			continue
		}
		// Carry-over can make a single realized period slightly exceed
		// the abstract 500 ms budget; only Pareto-compare clean periods.
		if !sets[0].Feasible(s0) || !sets[1].Feasible(s1) {
			continue
		}
		checked++
		allocn := economics.Allocation{
			Supply:      []vector.Quantity{s0, s1},
			Consumption: []vector.Quantity{agg},
		}
		if economics.IsParetoOptimal(allocn, demand, sets, prefs) {
			optimal++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d settled periods to check", checked)
	}
	if optimal*2 < checked {
		t.Errorf("only %d of %d settled periods Pareto optimal", optimal, checked)
	}
	t.Logf("%d/%d settled periods Pareto optimal", optimal, checked)
}

// TestFigure1ThroughputOrdering replays the motivating example through
// the full simulator: under the Figure 1 demand, QA-NT's steady-state
// throughput must beat BNQRD's (the paper's LB).
func TestFigure1ThroughputOrdering(t *testing.T) {
	run := func(mech alloc.Mechanism) int {
		fed := figure1System(t, mech)
		var arrivals []workload.Arrival
		for p := int64(0); p < 40; p++ {
			at := p * 500
			for i := 0; i < 2; i++ {
				arrivals = append(arrivals, workload.Arrival{At: at, Class: 0})
			}
			for i := 0; i < 6; i++ {
				arrivals = append(arrivals, workload.Arrival{At: at, Class: 1})
			}
		}
		col, err := fed.Run(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		// Throughput within the arrival horizon (20 s): completed
		// queries that finished inside it.
		done := 0
		for _, s := range col.Samples() {
			if s.FinishMs <= 40*500 {
				done++
			}
		}
		return done
	}
	qant := run(alloc.NewQANT(market.DefaultConfig(2)))
	lb := run(alloc.NewBNQRD())
	t.Logf("throughput within horizon: qa-nt %d, bnqrd %d", qant, lb)
	if qant <= lb {
		t.Errorf("QA-NT throughput %d not above load balancer's %d", qant, lb)
	}
}
