package sim

import (
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/workload"
)

// twoClassFixture builds a small heterogeneous federation with two query
// classes echoing the first experiment set: Q0 evaluable everywhere,
// Q1 only on half the nodes.
func twoClassFixture(t *testing.T, nodes int) (*catalog.Catalog, []costmodel.Template) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	p := catalog.Table3()
	p.Nodes = nodes
	p.Relations = 40
	p.HashJoinNodes = nodes * 95 / 100
	if p.AvgMirrors > nodes {
		p.AvgMirrors = nodes
	}
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	// Class 0: relation 0 mirrored on every node; class 1: relation 1 on
	// the first half only.
	for _, n := range cat.Nodes {
		n.Holds[0] = true
		delete(n.Holds, 1)
	}
	for _, n := range cat.Nodes[:nodes/2] {
		n.Holds[1] = true
	}
	ts := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
		{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
	}
	model := costmodel.New(cat)
	// Calibrate class costs near the paper's Q1=1000ms, Q2=500ms.
	for i, target := range []float64{1000, 500} {
		best, _ := model.EstimateBest(ts[i])
		ts[i].CostScale = target / best
	}
	return cat, ts
}

func runMechanism(t *testing.T, cat *catalog.Catalog, ts []costmodel.Template, mech alloc.Mechanism, arrivals []workload.Arrival) float64 {
	t.Helper()
	fed, err := New(Config{Catalog: cat, Templates: ts, PeriodMs: 500}, mech)
	if err != nil {
		t.Fatalf("sim.New(%s): %v", mech.Name(), err)
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		t.Fatalf("run %s: %v", mech.Name(), err)
	}
	sum := col.Summarize()
	if sum.Completed == 0 {
		t.Fatalf("%s completed no queries", mech.Name())
	}
	if sum.Completed+sum.Dropped != len(arrivals) {
		t.Fatalf("%s: %d completed + %d dropped != %d arrivals", mech.Name(), sum.Completed, sum.Dropped, len(arrivals))
	}
	t.Logf("%-18s mean=%8.1fms completed=%d dropped=%d", mech.Name(), sum.MeanRespMs, sum.Completed, sum.Dropped)
	return sum.MeanRespMs
}

// TestSmokeOverloadOrdering checks the headline qualitative result: under
// a sinusoid overload, QA-NT and Greedy beat the load balancers, and
// QA-NT is not worse than Greedy.
func TestSmokeOverloadOrdering(t *testing.T) {
	cat, ts := twoClassFixture(t, 20)
	capacity := EstimateCapacity(cat, ts, []float64{2, 1})
	if capacity <= 0 {
		t.Fatalf("capacity estimate is %v", capacity)
	}
	gen := func(seed int64) []workload.Arrival {
		rng := rand.New(rand.NewSource(seed))
		s1 := workload.Sinusoid{Class: 0, Origin: -1, OriginCount: 20, Freq: 0.05,
			PeakRate: capacity * 3.0 * 2 / 3, PhaseDeg: 0, Duration: 40000}
		s2 := workload.Sinusoid{Class: 1, Origin: -1, OriginCount: 20, Freq: 0.05,
			PeakRate: capacity * 3.0 * 1 / 3, PhaseDeg: 900, Duration: 40000}
		as := append(s1.Generate(rng), s2.Generate(rng)...)
		workload.Sort(as)
		return as
	}
	arrivals := gen(42)
	if len(arrivals) < 100 {
		t.Fatalf("workload too small: %d arrivals", len(arrivals))
	}

	qant := runMechanism(t, cat, ts, alloc.NewQANT(market.DefaultConfig(2)), arrivals)
	greedy := runMechanism(t, cat, ts, alloc.NewGreedy(nil, 0), arrivals)
	random := runMechanism(t, cat, ts, alloc.NewRandom(rand.New(rand.NewSource(1))), arrivals)
	rr := runMechanism(t, cat, ts, alloc.NewRoundRobin(), arrivals)
	bnqrd := runMechanism(t, cat, ts, alloc.NewBNQRD(), arrivals)
	probes := runMechanism(t, cat, ts, alloc.NewTwoRandomProbes(rand.New(rand.NewSource(2))), arrivals)

	for name, v := range map[string]float64{"random": random, "round-robin": rr, "bnqrd": bnqrd, "two-probes": probes} {
		if qant >= v {
			t.Errorf("QA-NT (%.0fms) should beat %s (%.0fms) under overload", qant, name, v)
		}
	}
	if qant > greedy*1.25 {
		t.Errorf("QA-NT (%.0fms) should be competitive with Greedy (%.0fms)", qant, greedy)
	}
}
