package market

import (
	"encoding/json"
	"fmt"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

// Snapshot is the persistent state of an agent: everything a node
// needs to resume its market position after a restart. Learned prices
// are the valuable part — they encode the node's view of the demand it
// has seen — so long-running qanode deployments checkpoint them.
type Snapshot struct {
	Prices []float64 `json:"prices"`
	Stats  Stats     `json:"stats"`
}

// Snapshot captures the agent's persistent state. Per-period state
// (remaining supply, adjustment counters) is deliberately excluded: a
// restore always begins a fresh period.
func (a *Agent) Snapshot() Snapshot {
	return Snapshot{
		Prices: append([]float64(nil), a.prices...),
		Stats:  a.stats,
	}
}

// Restore builds an agent from a snapshot, resuming with the learned
// prices and lifetime counters. The supply set and config are provided
// fresh (capacity may have changed across the restart); the snapshot's
// class count must match cfg.Classes.
func Restore(set economics.SupplySet, cfg Config, snap Snapshot) (*Agent, error) {
	a, err := NewAgent(set, cfg)
	if err != nil {
		return nil, err
	}
	if len(snap.Prices) != a.cfg.Classes {
		return nil, fmt.Errorf("market: snapshot has %d classes, config %d", len(snap.Prices), a.cfg.Classes)
	}
	if err := a.SetPrices(vector.Prices(snap.Prices)); err != nil {
		return nil, fmt.Errorf("market: snapshot prices: %w", err)
	}
	a.stats = snap.Stats
	return a, nil
}

// MarshalSnapshot serializes a snapshot to JSON.
func MarshalSnapshot(s Snapshot) ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot parses a snapshot produced by MarshalSnapshot.
func UnmarshalSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("market: parsing snapshot: %w", err)
	}
	return s, nil
}
