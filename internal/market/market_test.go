package market

import (
	"math"
	"testing"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

func newTestAgent(t *testing.T, cost []float64, budget float64, cfg Config) *Agent {
	t.Helper()
	set := economics.TimeBudgetSupplySet{Cost: cost, Budget: budget}
	a, err := NewAgent(set, cfg)
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	set := economics.TimeBudgetSupplySet{Cost: []float64{100}, Budget: 500}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Classes: 1, Lambda: 0.1}, true},
		{"zero classes", Config{Classes: 0, Lambda: 0.1}, false},
		{"zero lambda", Config{Classes: 1, Lambda: 0}, false},
		{"lambda one", Config{Classes: 1, Lambda: 1}, false},
		{"floor above cap", Config{Classes: 1, Lambda: 0.1, PriceFloor: 10, PriceCap: 1}, false},
	}
	for _, c := range cases {
		_, err := NewAgent(set, c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%t", c.name, err, c.ok)
		}
	}
	if _, err := NewAgent(nil, Config{Classes: 1, Lambda: 0.1}); err == nil {
		t.Error("nil supply set accepted")
	}
}

func TestBeginPeriodSolvesEq4(t *testing.T) {
	// Figure 1's N1: with equal prices the best response is 5×q2.
	a := newTestAgent(t, []float64{400, 100}, 500, DefaultConfig(2))
	a.BeginPeriod()
	if want := (vector.Quantity{0, 5}); !a.PlannedSupply().Equal(want) {
		t.Errorf("planned supply %v, want %v", a.PlannedSupply(), want)
	}
}

func TestOfferAcceptConsumesSupply(t *testing.T) {
	a := newTestAgent(t, []float64{400, 100}, 500, DefaultConfig(2))
	a.BeginPeriod()
	for i := 0; i < 5; i++ {
		if !a.Offer(1) {
			t.Fatalf("offer %d refused with supply remaining", i)
		}
		if err := a.Accept(1); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	if a.Offer(1) {
		t.Error("offer granted with exhausted supply")
	}
	if err := a.Accept(1); err == nil {
		t.Error("accept beyond supply did not error")
	}
	st := a.Stats()
	if st.Offers != 5 || st.Accepts != 5 || st.Rejects != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRejectionRaisesPrice(t *testing.T) {
	cfg := DefaultConfig(2)
	a := newTestAgent(t, []float64{400, 100}, 500, cfg)
	a.BeginPeriod()
	p0 := a.Prices()
	// Class 0 is not in the supply vector: the request is refused and
	// its price rises by λ·p.
	if a.Offer(0) {
		t.Fatal("unexpected offer for unsupplied class")
	}
	p1 := a.Prices()
	want := p0[0] * (1 + cfg.Lambda)
	if math.Abs(p1[0]-want) > 1e-12 {
		t.Errorf("price after rejection %g, want %g", p1[0], want)
	}
	if p1[1] != p0[1] {
		t.Errorf("unrelated class price moved: %g -> %g", p0[1], p1[1])
	}
}

func TestUnsoldSupplyCutsPrice(t *testing.T) {
	cfg := DefaultConfig(2)
	a := newTestAgent(t, []float64{400, 100}, 500, cfg)
	a.BeginPeriod() // supply (0,5), nothing sold
	p0 := a.Prices()
	a.EndPeriod()
	p1 := a.Prices()
	want := p0[1] - 5*cfg.Lambda*p0[1] // step 13: p -= s·λ·p
	if math.Abs(p1[1]-want) > 1e-12 {
		t.Errorf("price after unsold period %g, want %g", p1[1], want)
	}
	if p1[0] != p0[0] {
		t.Errorf("class with zero supply should keep its price: %g -> %g", p0[0], p1[0])
	}
	if a.Stats().Unsold != 5 {
		t.Errorf("unsold = %d, want 5", a.Stats().Unsold)
	}
}

func TestPriceFloorAndCap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PriceFloor = 0.5
	cfg.PriceCap = 2
	a := newTestAgent(t, []float64{600}, 500, cfg) // class never fits: always rejected
	a.BeginPeriod()
	for i := 0; i < 100; i++ {
		a.Offer(0)
	}
	if p := a.Prices()[0]; p > cfg.PriceCap {
		t.Errorf("price %g exceeds cap %g", p, cfg.PriceCap)
	}
	// Now drive the price down with unsold periods.
	b := newTestAgent(t, []float64{100}, 500, cfg)
	for i := 0; i < 100; i++ {
		b.BeginPeriod()
		b.EndPeriod()
	}
	if p := b.Prices()[0]; p < cfg.PriceFloor {
		t.Errorf("price %g below floor %g", p, cfg.PriceFloor)
	}
}

func TestMaxAdjustsPerPeriod(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxAdjustsPerPeriod = 3
	a := newTestAgent(t, []float64{600}, 500, cfg)
	a.BeginPeriod()
	for i := 0; i < 10; i++ {
		a.Offer(0)
	}
	want := 1.0
	for i := 0; i < 3; i++ {
		want *= 1 + cfg.Lambda
	}
	if p := a.Prices()[0]; math.Abs(p-want) > 1e-12 {
		t.Errorf("price %g, want %g (3 adjustments max)", p, want)
	}
	a.EndPeriod()
	a.BeginPeriod()
	a.Offer(0) // the cap resets each period
	if a.Stats().PriceUps != 4 {
		t.Errorf("PriceUps = %d, want 4", a.Stats().PriceUps)
	}
}

func TestMarketDynamicsShiftSupply(t *testing.T) {
	// The Section 3.3 narrative: N1 initially supplies only q2; if q1
	// demand keeps failing, q1's price rises until N1 starts supplying
	// q1 as well.
	a := newTestAgent(t, []float64{400, 100}, 500, DefaultConfig(2))
	for period := 0; period < 100; period++ {
		a.BeginPeriod()
		if a.PlannedSupply()[0] > 0 {
			return // q1 entered the supply vector
		}
		// q1 requests keep arriving and failing; q2 sells out.
		for i := 0; i < 4; i++ {
			a.Offer(0)
		}
		for a.Offer(1) {
			if err := a.Accept(1); err != nil {
				t.Fatalf("accept: %v", err)
			}
		}
		a.EndPeriod()
	}
	t.Fatal("q1 never entered the supply vector after 100 periods of excess demand")
}

func TestActivationThreshold(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ActivationThreshold = 5
	a := newTestAgent(t, []float64{400, 100}, 500, cfg)
	a.BeginPeriod()
	if a.Active() {
		t.Fatal("agent active below threshold")
	}
	// Inactive: any query fitting the capacity is accepted, including
	// class 0 which the priced supply vector would exclude.
	if !a.Offer(0) {
		t.Fatal("inactive agent refused a feasible query")
	}
	if err := a.Accept(0); err != nil {
		t.Fatalf("accept: %v", err)
	}
	// 400 of 500 ms used: a second class-0 query does not fit.
	if a.Offer(0) {
		t.Error("inactive agent offered beyond capacity")
	}
	// One q2 still fits (100 ms left).
	if !a.Offer(1) {
		t.Error("inactive agent refused a fitting query")
	}
	// Force the price over the threshold: the agent becomes active.
	if err := a.SetPrices(vector.Prices{10, 1}); err != nil {
		t.Fatalf("SetPrices: %v", err)
	}
	if !a.Active() {
		t.Error("agent inactive above threshold")
	}
}

func TestSetPricesValidation(t *testing.T) {
	a := newTestAgent(t, []float64{100}, 500, DefaultConfig(1))
	if err := a.SetPrices(vector.Prices{1, 2}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := a.SetPrices(vector.Prices{-1}); err == nil {
		t.Error("negative price accepted")
	}
	if err := a.SetPrices(vector.Prices{3}); err != nil {
		t.Errorf("valid price rejected: %v", err)
	}
	if a.Prices()[0] != 3 {
		t.Error("SetPrices did not take effect")
	}
}

func TestOfferPanicsOnBadClass(t *testing.T) {
	a := newTestAgent(t, []float64{100}, 500, DefaultConfig(1))
	a.BeginPeriod()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range class did not panic")
		}
	}()
	a.Offer(5)
}

func TestExactSolverMatchesOrBeatsGreedy(t *testing.T) {
	// A case where greedy-by-density is suboptimal: budget 500,
	// costs (300, 280), prices (3.0, 2.9). Density favors class 1
	// (0.0104 vs 0.0100), so greedy takes one of class 1 (value 2.9);
	// the exact optimum is one of class 0 (value 3.0).
	cost := []float64{300, 280}
	p := vector.Prices{3.0, 2.9}
	greedy := economics.TimeBudgetSupplySet{Cost: cost, Budget: 500}
	exact := ExactTimeBudgetSupplySet{Cost: cost, Budget: 500, Granularity: 1}
	gv := greedy.BestResponse(p).Value(p)
	ev := exact.BestResponse(p).Value(p)
	if ev < gv {
		t.Errorf("exact value %g below greedy %g", ev, gv)
	}
	if ev != 3.0 {
		t.Errorf("exact value %g, want 3.0", ev)
	}
}

func TestExactSolverFeasibility(t *testing.T) {
	exact := ExactTimeBudgetSupplySet{Cost: []float64{130, 70, 0}, Budget: 500, Granularity: 1}
	s := exact.BestResponse(vector.Prices{2, 1, 99})
	if !exact.Feasible(s) {
		t.Errorf("exact best response %v infeasible", s)
	}
	if s[2] != 0 {
		t.Errorf("unevaluable class supplied: %v", s)
	}
	// Zero budget yields zero supply.
	empty := ExactTimeBudgetSupplySet{Cost: []float64{100}, Budget: 0}
	if !empty.BestResponse(vector.Prices{1}).IsZero() {
		t.Error("zero budget produced supply")
	}
	// No affordable class yields zero supply.
	tooBig := ExactTimeBudgetSupplySet{Cost: []float64{900}, Budget: 500}
	if !tooBig.BestResponse(vector.Prices{1}).IsZero() {
		t.Error("unaffordable class produced supply")
	}
}

func TestExactVersusGreedyRandomized(t *testing.T) {
	// The exact solver must never be worse than greedy on any instance.
	cases := [][]float64{
		{100, 100, 100},
		{170, 230, 90},
		{499, 250, 251},
		{60, 450, 120},
	}
	prices := []vector.Prices{
		{1, 1, 1},
		{5, 2, 1},
		{1, 4, 2},
		{0.5, 3, 1.1},
	}
	for i, cost := range cases {
		for j, p := range prices {
			greedy := economics.TimeBudgetSupplySet{Cost: cost, Budget: 500}
			exact := ExactTimeBudgetSupplySet{Cost: cost, Budget: 500, Granularity: 1}
			gv := greedy.BestResponse(p).Value(p)
			es := exact.BestResponse(p)
			ev := es.Value(p)
			if !exact.Feasible(es) {
				t.Errorf("case %d/%d: exact response infeasible", i, j)
			}
			if ev+1e-9 < gv {
				t.Errorf("case %d/%d: exact %g < greedy %g", i, j, ev, gv)
			}
		}
	}
}

func TestSupplySetSwap(t *testing.T) {
	a := newTestAgent(t, []float64{100}, 500, DefaultConfig(1))
	a.BeginPeriod()
	if got := a.PlannedSupply()[0]; got != 5 {
		t.Fatalf("planned %d, want 5", got)
	}
	if err := a.SetSupplySet(economics.TimeBudgetSupplySet{Cost: []float64{100}, Budget: 1000}); err != nil {
		t.Fatalf("SetSupplySet: %v", err)
	}
	a.BeginPeriod()
	if got := a.PlannedSupply()[0]; got != 10 {
		t.Fatalf("planned %d after swap, want 10", got)
	}
	if err := a.SetSupplySet(nil); err == nil {
		t.Error("nil supply set accepted")
	}
}
