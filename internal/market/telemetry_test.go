package market

import (
	"reflect"
	"testing"

	"github.com/qamarket/qamarket/internal/economics"
)

func TestAgentTelemetry(t *testing.T) {
	set := economics.TimeBudgetSupplySet{Cost: []float64{100, 100}, Budget: 300}
	a, err := NewAgent(set, Config{Classes: 2, Lambda: 0.1})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.BeginPeriod()
	if !a.Offer(0) {
		t.Fatal("offer 0 refused")
	}
	if err := a.Accept(0); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	// Burn class 1's supply, then force a trading failure (price up).
	for a.Offer(1) {
		if err := a.Accept(1); err != nil {
			t.Fatalf("Accept: %v", err)
		}
	}

	tel := a.Telemetry()
	if tel.Classes != 2 || !tel.Active {
		t.Fatalf("telemetry header = %+v", tel)
	}
	if len(tel.Prices) != 2 || len(tel.Planned) != 2 || len(tel.Remaining) != 2 || len(tel.Accepted) != 2 {
		t.Fatalf("telemetry vectors wrong length: %+v", tel)
	}
	if tel.Prices[1] <= tel.Prices[0] {
		t.Fatalf("class 1 failed a trade, its price must exceed class 0: %v", tel.Prices)
	}
	if tel.Accepted[0] != 1 {
		t.Fatalf("accepted[0] = %d, want 1", tel.Accepted[0])
	}
	if tel.Rejects != 1 || tel.PriceUps != 1 {
		t.Fatalf("counters = %+v", tel)
	}
	if tel.Offers != tel.Accepts {
		t.Fatalf("every offer was accepted: %+v", tel)
	}
	for k := range tel.Planned {
		if tel.Remaining[k] != tel.Planned[k]-tel.Accepted[k] {
			t.Fatalf("remaining[%d] inconsistent: %+v", k, tel)
		}
	}

	// The snapshot is a copy: mutating it must not touch the agent.
	tel.Prices[0] = 999
	tel.Remaining[0] = 999
	if a.Prices()[0] == 999 || a.RemainingSupply()[0] == 999 {
		t.Fatal("telemetry mutation leaked into the agent")
	}

	// Telemetry agrees with the accessor API it aggregates.
	tel2 := a.Telemetry()
	if !reflect.DeepEqual(tel2.Prices, []float64(a.Prices())) {
		t.Fatalf("prices diverge: %v vs %v", tel2.Prices, a.Prices())
	}
	if !reflect.DeepEqual(tel2.Remaining, []int(a.RemainingSupply())) {
		t.Fatalf("remaining diverges: %v vs %v", tel2.Remaining, a.RemainingSupply())
	}
	if s := a.Stats(); tel2.Offers != s.Offers || tel2.Rejects != s.Rejects || tel2.Periods != s.Periods {
		t.Fatalf("stats diverge: %+v vs %+v", tel2, s)
	}

	a.EndPeriod()
	if got := a.Telemetry().Periods; got != 1 {
		t.Fatalf("periods after EndPeriod = %d, want 1", got)
	}
}
