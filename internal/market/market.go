// Package market implements the paper's primary contribution: the QA-NT
// non-tâtonnement query-market agent of Section 3.3.
//
// Each server node runs one Agent. The agent keeps a *private* price
// table over its own query classes (prices are never exchanged over the
// network, preserving node autonomy), and in every time period τ:
//
//  1. BeginPeriod solves eq. (4) — max_{s∈S_i} p·s — to produce the
//     node's supply vector for the period;
//  2. for every incoming request, Offer answers whether the node offers
//     to evaluate the query (s_ik > 0); on rejection the class price is
//     raised by λ·p_k (excess demand signal); Accept burns one unit of
//     supply when a client takes the offer;
//  3. EndPeriod lowers the price of every class with unsold supply by
//     s_ik·λ·p_k (excess supply signal).
//
// Trading failures are the only price-adjustment signal, exactly as in
// the QA-NT listing; Proposition 3.1 (via the non-tâtonnement literature)
// guarantees convergence of excess demand to zero.
package market

import (
	"errors"
	"fmt"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

// Config parameterizes a QA-NT agent.
type Config struct {
	// Classes is K, the number of query classes this node distinguishes.
	// Classification is private to the node (Section 2.1): different
	// nodes may use different K without harming the mechanism.
	Classes int
	// Lambda is the price-adjustment step λ of eq. (6) and of the QA-NT
	// listing. Larger values converge in fewer periods but estimate the
	// equilibrium prices less accurately.
	Lambda float64
	// InitialPrice seeds every class price (defaults to 1).
	InitialPrice float64
	// PriceFloor and PriceCap clamp prices to keep the multiplicative
	// recursion numerically safe over unbounded runs. Defaults: 1e-6 and
	// 1e6.
	PriceFloor, PriceCap float64
	// ActivationThreshold implements the Section 5.1 deployment advice:
	// the agent always tracks prices, but only restricts supply through
	// them when some price exceeds the threshold (a decentralized signal
	// that the system is overloaded). Zero means "always active".
	ActivationThreshold float64
	// MaxAdjustsPerPeriod bounds how many upward adjustments a single
	// class may receive within one period, preventing price blow-up when
	// thousands of requests for one class arrive in one τ. Zero means
	// unbounded (the literal paper listing).
	MaxAdjustsPerPeriod int
}

func (c *Config) applyDefaults() error {
	if c.Classes <= 0 {
		return errors.New("market: Classes must be positive")
	}
	if c.Lambda <= 0 {
		return errors.New("market: Lambda must be positive")
	}
	if c.Lambda >= 1 {
		return errors.New("market: Lambda must be below 1 (price updates are multiplicative)")
	}
	if c.InitialPrice <= 0 {
		c.InitialPrice = 1
	}
	if c.PriceFloor <= 0 {
		c.PriceFloor = 1e-6
	}
	if c.PriceCap <= 0 {
		c.PriceCap = 1e6
	}
	if c.PriceFloor >= c.PriceCap {
		return fmt.Errorf("market: price floor %g >= cap %g", c.PriceFloor, c.PriceCap)
	}
	return nil
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: λ=0.1, unit initial prices, always-active pricing.
func DefaultConfig(classes int) Config {
	return Config{Classes: classes, Lambda: 0.1, InitialPrice: 1}
}

// Agent is one node's QA-NT market participant. It is not safe for
// concurrent use; wrap it in the caller's synchronization (the cluster
// package serializes access per node).
type Agent struct {
	cfg      Config
	set      economics.SupplySet
	prices   vector.Prices
	supply   vector.Quantity // remaining offers in the current period
	planned  vector.Quantity // supply vector chosen at BeginPeriod
	accepted vector.Quantity // work accepted in the current period
	adjusts  []int           // upward adjustments per class this period

	// Stats accumulate across the agent's lifetime.
	stats Stats
}

// Stats counts the agent's market activity.
type Stats struct {
	Periods  int // completed periods
	Offers   int // requests answered with an offer
	Accepts  int // offers accepted by clients
	Rejects  int // requests refused (no supply left)
	Unsold   int // supply units left unsold at period ends
	PriceUps int // upward price adjustments
	PriceDns int // downward price adjustments
}

// NewAgent builds an agent over the node's supply set. The supply set
// encodes the node's capabilities S_i (Section 2.2): which classes it
// can evaluate and how many fit in one period.
func NewAgent(set economics.SupplySet, cfg Config) (*Agent, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, errors.New("market: nil supply set")
	}
	a := &Agent{
		cfg:      cfg,
		set:      set,
		prices:   vector.NewPrices(cfg.Classes, cfg.InitialPrice),
		supply:   vector.New(cfg.Classes),
		planned:  vector.New(cfg.Classes),
		accepted: vector.New(cfg.Classes),
		adjusts:  make([]int, cfg.Classes),
	}
	return a, nil
}

// BeginPeriod starts a new time period τ: it solves eq. (4) against the
// current private prices and installs the resulting supply vector.
func (a *Agent) BeginPeriod() {
	a.planned = a.set.BestResponse(a.prices)
	a.supply = a.planned.Clone()
	a.accepted = vector.New(a.cfg.Classes)
	for i := range a.adjusts {
		a.adjusts[i] = 0
	}
}

// Active reports whether market pricing currently restricts supply. With
// a zero ActivationThreshold the agent is always active; otherwise it
// activates once any class price exceeds the threshold (the node's local
// overload signal, Section 5.1).
func (a *Agent) Active() bool {
	if a.cfg.ActivationThreshold <= 0 {
		return true
	}
	for _, p := range a.prices {
		if p > a.cfg.ActivationThreshold {
			return true
		}
	}
	return false
}

// Offer implements steps 4–10 of the QA-NT listing for one incoming
// request of class k. It returns true when the node offers to evaluate
// the query (s_ik > 0 while pricing is active, or residual capacity
// exists while it is not). When it returns false the price of k has
// already been raised by λ·p_k — the trading failure is the price
// signal, and prices are tracked even below the activation threshold.
func (a *Agent) Offer(k int) bool {
	a.mustClass(k)
	if a.Active() {
		if a.supply[k] > 0 {
			a.stats.Offers++
			return true
		}
	} else if a.fitsCapacity(k) {
		a.stats.Offers++
		return true
	}
	a.stats.Rejects++
	a.raise(k)
	return false
}

// fitsCapacity reports whether one more class-k query fits the node's
// supply set on top of the work already accepted this period.
func (a *Agent) fitsCapacity(k int) bool {
	probe := a.accepted.Clone()
	probe[k]++
	return a.set.Feasible(probe)
}

// Accept records that a client accepted this node's offer for one
// class-k query (step 6: s_ik = s_ik − 1). It returns an error if no
// offered supply remains, which indicates a protocol violation by the
// caller (accepting more than was offered).
func (a *Agent) Accept(k int) error {
	a.mustClass(k)
	if a.Active() {
		if a.supply[k] <= 0 {
			return fmt.Errorf("market: accept of class %d without remaining supply", k)
		}
	} else if !a.fitsCapacity(k) {
		return fmt.Errorf("market: accept of class %d beyond node capacity", k)
	}
	if a.supply[k] > 0 {
		a.supply[k]--
	}
	a.accepted[k]++
	a.stats.Accepts++
	return nil
}

// Decline records that a client declined this node's offer (it chose a
// different seller). The supply unit stays available for other buyers;
// no price movement happens — only trading *failures* move prices.
func (a *Agent) Decline(k int) {
	a.mustClass(k)
}

// EndPeriod implements steps 12–14: every class with unsold supply has
// its price cut by s_ik·λ·p_k, then the period counters reset. Call
// BeginPeriod to start the next period.
func (a *Agent) EndPeriod() {
	for k, left := range a.supply {
		if left > 0 {
			a.stats.Unsold += left
			a.lower(k, left)
		}
	}
	a.stats.Periods++
}

// Prices returns a copy of the node's private price vector. Exposed for
// observability; QA-NT never sends prices to other nodes.
func (a *Agent) Prices() vector.Prices { return a.prices.Clone() }

// RemainingSupply returns a copy of the unsold portion of the current
// period's supply vector.
func (a *Agent) RemainingSupply() vector.Quantity { return a.supply.Clone() }

// PlannedSupply returns a copy of the supply vector chosen by the last
// BeginPeriod (the s_i* of eq. 4).
func (a *Agent) PlannedSupply() vector.Quantity { return a.planned.Clone() }

// Accepted returns a copy of the per-class counts of work accepted in
// the current period.
func (a *Agent) Accepted() vector.Quantity { return a.accepted.Clone() }

// SetSupplySet swaps the agent's supply set; the next BeginPeriod uses
// it. Callers use this to reflect capacity that changes between periods
// (e.g. the rolling budget of the simulator adapter).
func (a *Agent) SetSupplySet(set economics.SupplySet) error {
	if set == nil {
		return errors.New("market: nil supply set")
	}
	a.set = set
	return nil
}

// Stats returns a snapshot of the agent's lifetime counters.
func (a *Agent) Stats() Stats { return a.stats }

// SetPrices overrides the private price vector; intended for tests and
// for warm-starting agents in ablation studies.
func (a *Agent) SetPrices(p vector.Prices) error {
	if p.Len() != a.cfg.Classes {
		return fmt.Errorf("market: price vector has %d classes, agent has %d", p.Len(), a.cfg.Classes)
	}
	if !p.IsValid() {
		return errors.New("market: invalid price vector")
	}
	a.prices = p.Clone()
	return nil
}

func (a *Agent) raise(k int) {
	if a.cfg.MaxAdjustsPerPeriod > 0 && a.adjusts[k] >= a.cfg.MaxAdjustsPerPeriod {
		return
	}
	a.adjusts[k]++
	a.prices[k] += a.cfg.Lambda * a.prices[k]
	if a.prices[k] > a.cfg.PriceCap {
		a.prices[k] = a.cfg.PriceCap
	}
	a.stats.PriceUps++
}

func (a *Agent) lower(k, unsold int) {
	cut := float64(unsold) * a.cfg.Lambda * a.prices[k]
	a.prices[k] -= cut
	if a.prices[k] < a.cfg.PriceFloor {
		a.prices[k] = a.cfg.PriceFloor
	}
	a.stats.PriceDns++
}

func (a *Agent) mustClass(k int) {
	if k < 0 || k >= a.cfg.Classes {
		panic(fmt.Sprintf("market: class %d out of range [0,%d)", k, a.cfg.Classes))
	}
}
