package market

import (
	"math"

	"github.com/qamarket/qamarket/internal/vector"
)

// ExactTimeBudgetSupplySet solves eq. (4) exactly with dynamic
// programming over a discretized time budget (an unbounded knapsack),
// instead of the greedy density heuristic of
// economics.TimeBudgetSupplySet. It exists for the DESIGN.md solver
// ablation: Section 5.1 attributes QA-NT's small-load losses to integer
// rounding in the supply computation, and the exact solver quantifies
// how much of that loss the heuristic adds on top.
type ExactTimeBudgetSupplySet struct {
	// Cost holds per-class execution costs in milliseconds; entries <= 0
	// mark classes the node cannot evaluate.
	Cost []float64
	// Budget is the period capacity in milliseconds.
	Budget float64
	// Granularity is the DP time step in milliseconds (default 1).
	// Coarser steps trade exactness for speed.
	Granularity float64
	// Scratch, when non-nil, supplies reusable DP buffers so repeated
	// solves (one per node per period) stop allocating. A scratch must
	// not be shared across concurrent solvers.
	Scratch *DPScratch
}

// DPScratch holds the BestResponse working arrays between solves.
type DPScratch struct {
	best      []float64
	last      []int
	costTicks []int
}

// grow resizes the buffers for k classes and t+1 budget ticks, zeroing
// the prefix BestResponse reads.
func (s *DPScratch) grow(k, ticks int) (best []float64, last, costTicks []int) {
	if cap(s.best) < ticks+1 {
		s.best = make([]float64, ticks+1)
		s.last = make([]int, ticks+1)
	}
	if cap(s.costTicks) < k {
		s.costTicks = make([]int, k)
	}
	best = s.best[:ticks+1]
	last = s.last[:ticks+1]
	costTicks = s.costTicks[:k]
	best[0] = 0
	last[0] = -1
	return best, last, costTicks
}

// Feasible reports whether s fits the budget (same test as the greedy
// supply set; feasibility does not depend on the solver).
func (t ExactTimeBudgetSupplySet) Feasible(s vector.Quantity) bool {
	if len(s) != len(t.Cost) || !s.IsValid() {
		return false
	}
	used := 0.0
	for k, n := range s {
		if n == 0 {
			continue
		}
		if t.Cost[k] <= 0 {
			return false
		}
		used += float64(n) * t.Cost[k]
	}
	return used <= t.Budget+1e-9
}

// BestResponse solves the unbounded knapsack max p·s subject to
// cost·s <= Budget by DP over Budget/Granularity ticks. Costs are
// rounded *up* to ticks so the returned vector is always feasible.
func (t ExactTimeBudgetSupplySet) BestResponse(p vector.Prices) vector.Quantity {
	k := len(t.Cost)
	out := vector.New(k)
	gran := t.Granularity
	if gran <= 0 {
		gran = 1
	}
	ticks := int(t.Budget / gran)
	if ticks <= 0 {
		return out
	}
	var best []float64
	var last, costTicks []int
	if t.Scratch != nil {
		best, last, costTicks = t.Scratch.grow(k, ticks)
	} else {
		best = make([]float64, ticks+1)
		last = make([]int, ticks+1)
		costTicks = make([]int, k)
	}
	usable := false
	for c := range t.Cost {
		if t.Cost[c] <= 0 {
			costTicks[c] = -1
			continue
		}
		costTicks[c] = int(math.Ceil(t.Cost[c] / gran))
		if costTicks[c] == 0 {
			costTicks[c] = 1
		}
		if costTicks[c] <= ticks {
			usable = true
		}
	}
	if !usable {
		return out
	}
	// best[b] = max value achievable with b ticks; last[b] = class of the
	// item added to reach best[b] at exactly budget b, or -1 when the
	// optimum at b simply inherits the optimum at b-1.
	for b := 1; b <= ticks; b++ {
		best[b] = best[b-1]
		last[b] = -1
		for c := 0; c < k; c++ {
			ct := costTicks[c]
			if ct <= 0 || ct > b {
				continue
			}
			if v := best[b-ct] + p[c]; v > best[b]+1e-12 {
				best[b] = v
				last[b] = c
			}
		}
	}
	for b := ticks; b > 0; {
		c := last[b]
		if c == -1 {
			b--
			continue
		}
		out[c]++
		b -= costTicks[c]
	}
	return out
}
