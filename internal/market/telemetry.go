package market

// Telemetry is a per-period observability snapshot of one agent's
// market state: the private price vector, the supply picture for the
// current period, and the lifetime trading counters. It exists so the
// exposition layer (the node's /metrics endpoint) can render per-class
// prices and trading-failure counts without reaching into the agent
// piecemeal under the node lock.
type Telemetry struct {
	// Classes is K, the number of query classes the agent distinguishes.
	Classes int `json:"classes"`
	// Active reports whether pricing currently restricts supply.
	Active bool `json:"active"`
	// Prices is a copy of the private per-class price vector.
	Prices []float64 `json:"prices"`
	// Planned, Remaining, and Accepted describe the current period: the
	// supply vector chosen at BeginPeriod, the unsold portion of it, and
	// the per-class work accepted so far.
	Planned   []int `json:"planned"`
	Remaining []int `json:"remaining"`
	Accepted  []int `json:"accepted"`
	// Lifetime trading counters (see Stats).
	Periods  int `json:"periods"`
	Offers   int `json:"offers"`
	Accepts  int `json:"accepts"`
	Rejects  int `json:"rejects"`
	Unsold   int `json:"unsold"`
	PriceUps int `json:"price_ups"`
	PriceDns int `json:"price_dns"`
}

// Telemetry captures the agent's full observable state in one call.
// Every slice is a copy; the caller may retain or mutate the snapshot
// freely. Like the rest of the Agent API it must run under the
// caller's synchronization.
func (a *Agent) Telemetry() Telemetry {
	s := a.stats
	return Telemetry{
		Classes:   a.cfg.Classes,
		Active:    a.Active(),
		Prices:    a.prices.Clone(),
		Planned:   a.planned.Clone(),
		Remaining: a.supply.Clone(),
		Accepted:  a.accepted.Clone(),
		Periods:   s.Periods,
		Offers:    s.Offers,
		Accepts:   s.Accepts,
		Rejects:   s.Rejects,
		Unsold:    s.Unsold,
		PriceUps:  s.PriceUps,
		PriceDns:  s.PriceDns,
	}
}
