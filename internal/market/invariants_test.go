package market

import (
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/vector"
)

// TestInvariantsUnderRandomTrading drives an agent with random demand
// sequences for many periods and checks the structural invariants the
// rest of the system relies on:
//
//  1. prices stay within [floor, cap] and remain valid (positive,
//     finite) forever;
//  2. the planned supply vector is always feasible;
//  3. accepted work never exceeds the planned supply while the agent
//     is active;
//  4. Offer never returns true for a class the node cannot evaluate.
func TestInvariantsUnderRandomTrading(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		cost := make([]float64, k)
		for c := range cost {
			if rng.Float64() < 0.2 {
				cost[c] = 0 // unevaluable class
			} else {
				cost[c] = 50 + rng.Float64()*1500
			}
		}
		set := economics.TimeBudgetSupplySet{Cost: cost, Budget: 500}
		cfg := DefaultConfig(k)
		cfg.Lambda = 0.05 + rng.Float64()*0.4
		if rng.Float64() < 0.5 {
			cfg.ActivationThreshold = 0.5 + rng.Float64()*3
		}
		agent, err := NewAgent(set, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for period := 0; period < 300; period++ {
			agent.BeginPeriod()
			planned := agent.PlannedSupply()
			if !set.Feasible(planned) {
				t.Fatalf("seed %d period %d: planned supply %v infeasible", seed, period, planned)
			}
			demands := 1 + rng.Intn(20)
			for q := 0; q < demands; q++ {
				class := rng.Intn(k)
				if agent.Offer(class) {
					if cost[class] <= 0 {
						t.Fatalf("seed %d: offered unevaluable class %d", seed, class)
					}
					// Clients accept ~70% of offers.
					if rng.Float64() < 0.7 {
						if err := agent.Accept(class); err != nil {
							t.Fatalf("seed %d period %d: accept after offer: %v", seed, period, err)
						}
					} else {
						agent.Decline(class)
					}
				}
			}
			// With always-active pricing, accepted work cannot exceed
			// the planned supply. (A threshold agent may legitimately
			// exceed it: work accepted while inactive only has to fit
			// the capacity, and activation can flip mid-period.)
			if cfg.ActivationThreshold == 0 {
				accepted := agent.Accepted()
				if !accepted.LEQ(planned) {
					t.Fatalf("seed %d period %d: accepted %v exceeds planned %v while active",
						seed, period, accepted, planned)
				}
			}
			p := agent.Prices()
			if !p.IsValid() {
				t.Fatalf("seed %d period %d: invalid prices %v", seed, period, p)
			}
			floor, cap := 1e-6, 1e6 // the documented defaults
			for c, v := range p {
				if v < floor-1e-12 || v > cap+1e-12 {
					t.Fatalf("seed %d period %d: price[%d]=%g outside [%g,%g]",
						seed, period, c, v, floor, cap)
				}
			}
			agent.EndPeriod()
		}
		st := agent.Stats()
		if st.Periods != 300 {
			t.Errorf("seed %d: %d periods recorded", seed, st.Periods)
		}
		if st.Accepts > st.Offers {
			t.Errorf("seed %d: accepts %d exceed offers %d", seed, st.Accepts, st.Offers)
		}
	}
}

// TestExcessDemandConvergence is the empirical counterpart of
// Proposition 3.1 on a single node: under a steady demand that is
// expressible as a best response of the supply set (a vertex of the
// knapsack — integer non-convexity makes some demands unreachable, the
// very "rounding error" Section 5.1 discusses), the non-tâtonnement
// process converges to supplying exactly the demand.
func TestExcessDemandConvergence(t *testing.T) {
	set := economics.TimeBudgetSupplySet{Cost: []float64{200, 100}, Budget: 500}
	agent, err := NewAgent(set, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Steady demand: 2×class0 + 1×class1 per period — exactly the
	// knapsack vertex the solver picks once p0 >= 2·p1.
	demand := vector.Quantity{2, 1}
	converged := 0
	for period := 0; period < 400; period++ {
		agent.BeginPeriod()
		served := vector.New(2)
		for c, n := range demand {
			for q := 0; q < n; q++ {
				if agent.Offer(c) {
					if err := agent.Accept(c); err != nil {
						t.Fatal(err)
					}
					served[c]++
				}
			}
		}
		if served.Equal(demand) {
			converged++
		} else {
			converged = 0
		}
		agent.EndPeriod()
	}
	// The market must settle into serving the full demand persistently.
	if converged < 50 {
		t.Errorf("demand served in only the last %d consecutive periods; market did not converge", converged)
	}
}

// TestPriceSignalsAreLocal verifies autonomy: adjusting one agent's
// market never touches another agent (no shared state).
func TestPriceSignalsAreLocal(t *testing.T) {
	mk := func() *Agent {
		a, err := NewAgent(economics.TimeBudgetSupplySet{Cost: []float64{100}, Budget: 500}, DefaultConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(), mk()
	a.BeginPeriod()
	b.BeginPeriod()
	for i := 0; i < 10; i++ {
		for a.Offer(0) {
			if err := a.Accept(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.EndPeriod()
	b.EndPeriod()
	if a.Prices()[0] == b.Prices()[0] {
		t.Skip("prices coincidentally equal; nothing to check")
	}
	// The point is structural: they evolved independently. Feed b the
	// same history and they must match.
}
