package market_test

import (
	"fmt"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
)

// ExampleAgent walks one full market period of the paper's node N1
// (400 ms q1, 100 ms q2, 500 ms period).
func ExampleAgent() {
	set := economics.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	agent, _ := market.NewAgent(set, market.DefaultConfig(2))

	agent.BeginPeriod()
	fmt.Println("supply:", agent.PlannedSupply())

	// A client asks for one q2: offered and accepted.
	if agent.Offer(1) {
		_ = agent.Accept(1)
	}
	// A client asks for one q1: refused (not in the supply vector), so
	// q1's private price rises by λ·p.
	agent.Offer(0)
	fmt.Println("prices after refusal:", agent.Prices())

	// Period ends with 4 unsold q2: its price falls by 4·λ·p.
	agent.EndPeriod()
	fmt.Println("prices after settlement:", agent.Prices())
	// Output:
	// supply: (0, 5)
	// prices after refusal: (1.100, 1.000)
	// prices after settlement: (1.100, 0.600)
}
