package market

import (
	"testing"

	"github.com/qamarket/qamarket/internal/economics"
)

func TestSnapshotRoundTrip(t *testing.T) {
	set := economics.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	a := newTestAgent(t, []float64{400, 100}, 500, DefaultConfig(2))
	// Learn some prices.
	for period := 0; period < 5; period++ {
		a.BeginPeriod()
		a.Offer(0) // always rejected: raises p0
		a.EndPeriod()
	}
	snap := a.Snapshot()
	data, err := MarshalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(set, DefaultConfig(2), parsed)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	pa, pb := a.Prices(), b.Prices()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Errorf("price[%d] %g != %g after restore", i, pb[i], pa[i])
		}
	}
	if b.Stats().Periods != a.Stats().Periods {
		t.Errorf("stats not carried: %+v vs %+v", b.Stats(), a.Stats())
	}
	// The restored agent plans the same supply vector.
	a.BeginPeriod()
	b.BeginPeriod()
	if !a.PlannedSupply().Equal(b.PlannedSupply()) {
		t.Errorf("restored supply %v != original %v", b.PlannedSupply(), a.PlannedSupply())
	}
}

func TestRestoreValidation(t *testing.T) {
	set := economics.TimeBudgetSupplySet{Cost: []float64{100}, Budget: 500}
	if _, err := Restore(set, DefaultConfig(1), Snapshot{Prices: []float64{1, 2}}); err == nil {
		t.Error("class-count mismatch accepted")
	}
	if _, err := Restore(set, DefaultConfig(1), Snapshot{Prices: []float64{-1}}); err == nil {
		t.Error("invalid prices accepted")
	}
	if _, err := UnmarshalSnapshot([]byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}
