package market

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/qamarket/qamarket/internal/vector"
)

// TestExactSolverScratchMatchesFresh checks that reusing one DPScratch
// across many solves — with varying class counts, budgets and prices —
// returns exactly the allocations of the allocate-per-call path.
func TestExactSolverScratchMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scratch := &DPScratch{}
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		cost := make([]float64, k)
		p := vector.Prices(make([]float64, k))
		for c := range cost {
			cost[c] = float64(rng.Intn(40)) // 0 marks infeasible classes
			p[c] = rng.Float64() * 10
		}
		budget := float64(1 + rng.Intn(200))
		fresh := ExactTimeBudgetSupplySet{Cost: cost, Budget: budget}
		pooled := ExactTimeBudgetSupplySet{Cost: cost, Budget: budget, Scratch: scratch}
		want := fresh.BestResponse(p)
		got := pooled.BestResponse(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (k=%d budget=%g cost=%v p=%v):\nfresh  %v\npooled %v",
				trial, k, budget, cost, p, want, got)
		}
		if !pooled.Feasible(got) {
			t.Fatalf("trial %d: pooled response %v infeasible", trial, got)
		}
	}
}
