// Package workload synthesizes the query workloads of Section 5.1:
// sinusoid arrival processes for the dynamic-load experiments (Figures
// 3–5) and Zipf-distributed inter-arrival workloads over a large class
// universe for the heterogeneous experiments (Figure 6), plus the query
// template generator behind Table 3.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
)

// Arrival is one query entering the distributed system.
type Arrival struct {
	At     int64 // virtual milliseconds since experiment start
	Class  int   // query class (template index)
	Origin int   // node where the request originates
}

// byTime sorts arrivals chronologically, ties broken by class then
// origin for determinism.
type byTime []Arrival

func (a byTime) Len() int      { return len(a) }
func (a byTime) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a byTime) Less(i, j int) bool {
	if a[i].At != a[j].At {
		return a[i].At < a[j].At
	}
	if a[i].Class != a[j].Class {
		return a[i].Class < a[j].Class
	}
	return a[i].Origin < a[j].Origin
}

// Sort orders arrivals chronologically in place.
func Sort(as []Arrival) { sort.Sort(byTime(as)) }

// Sinusoid describes one sinusoidal arrival process for a single query
// class, as used in the first experiment set: the arrival rate is
// Peak·max(0, sin(2π·Freq·t + Phase)).
type Sinusoid struct {
	Class    int
	Origin   int     // -1 scatters origins uniformly over OriginCount nodes
	Freq     float64 // Hz (0.05–2 in Figure 5b)
	PeakRate float64 // queries per second at the crest
	PhaseDeg float64 // phase offset in degrees (the paper uses 900°)
	Duration int64   // ms
	// OriginCount is the number of client nodes when Origin is -1.
	OriginCount int
}

// Rate returns the instantaneous arrival rate (queries/second) at time
// t milliseconds.
func (s Sinusoid) Rate(t int64) float64 {
	phase := s.PhaseDeg * math.Pi / 180
	v := math.Sin(2*math.Pi*s.Freq*float64(t)/1000 + phase)
	if v < 0 {
		return 0
	}
	return s.PeakRate * v
}

// Generate produces the arrival stream via time-discretized sampling:
// for every millisecond the arrival probability is Rate/1000, drawn from
// rng. This is an exact thinning of the inhomogeneous Poisson process at
// 1 ms resolution.
func (s Sinusoid) Generate(rng *rand.Rand) []Arrival {
	var out []Arrival
	for t := int64(0); t < s.Duration; t++ {
		p := s.Rate(t) / 1000
		for p > 0 {
			if rng.Float64() < p {
				out = append(out, Arrival{At: t, Class: s.Class, Origin: s.origin(rng)})
			}
			p-- // rates above 1000/s yield multiple Bernoulli draws per ms
		}
	}
	return out
}

// HalfSecondCounts buckets arrivals into half-second bins — exactly the
// series plotted in Figure 3 ("number of queries entering the
// distributed system per half second").
func HalfSecondCounts(as []Arrival, durationMs int64) []int {
	n := int((durationMs + 499) / 500)
	counts := make([]int, n)
	for _, a := range as {
		b := int(a.At / 500)
		if b >= 0 && b < n {
			counts[b]++
		}
	}
	return counts
}

func (s Sinusoid) origin(rng *rand.Rand) int {
	if s.Origin >= 0 {
		return s.Origin
	}
	if s.OriginCount <= 0 {
		return 0
	}
	return rng.Intn(s.OriginCount)
}

// Zipf describes the second experiment set's workload: NumQueries
// queries over Classes query classes where the inter-arrival time of
// queries *within the same class* follows a Zipf distribution with
// parameter a, mean MeanGapMs and cap MaxGapMs (30,000 ms in the paper).
type Zipf struct {
	Classes     int
	NumQueries  int
	A           float64 // Zipf exponent (1 in the paper)
	MeanGapMs   float64 // average inter-arrival time t (varied 10–20,000)
	MaxGapMs    float64 // 30,000 in the paper
	OriginCount int     // arrivals originate uniformly over this many nodes
}

// Validate sanity-checks the spec.
func (z Zipf) Validate() error {
	switch {
	case z.Classes <= 0:
		return fmt.Errorf("workload: Classes must be positive, got %d", z.Classes)
	case z.NumQueries <= 0:
		return fmt.Errorf("workload: NumQueries must be positive, got %d", z.NumQueries)
	case z.A <= 0:
		return fmt.Errorf("workload: Zipf exponent must be positive, got %g", z.A)
	case z.MeanGapMs <= 0:
		return fmt.Errorf("workload: MeanGapMs must be positive, got %g", z.MeanGapMs)
	case z.MaxGapMs < z.MeanGapMs:
		return fmt.Errorf("workload: MaxGapMs %g below MeanGapMs %g", z.MaxGapMs, z.MeanGapMs)
	case z.OriginCount <= 0:
		return fmt.Errorf("workload: OriginCount must be positive, got %d", z.OriginCount)
	}
	return nil
}

// zipfRanks is the support size of the discrete Zipf sampler.
const zipfRanks = 1000

// Generate produces NumQueries arrivals. Queries are dealt to classes
// round-robin (so every class receives ~NumQueries/Classes queries) and
// each class's stream advances by Zipf-distributed gaps rescaled to the
// requested mean and capped at MaxGapMs.
func (z Zipf) Generate(rng *rand.Rand) ([]Arrival, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	sampler := newZipfSampler(z.A, zipfRanks)
	// E[rank] under the truncated Zipf law; scale gaps so the mean gap
	// matches MeanGapMs before capping.
	scale := z.MeanGapMs / sampler.mean
	perClass := (z.NumQueries + z.Classes - 1) / z.Classes
	out := make([]Arrival, 0, z.NumQueries)
	for c := 0; c < z.Classes; c++ {
		t := float64(rng.Int63n(int64(z.MeanGapMs) + 1)) // desynchronize classes
		for q := 0; q < perClass && len(out) < z.NumQueries; q++ {
			gap := float64(sampler.sample(rng)) * scale
			if gap > z.MaxGapMs {
				gap = z.MaxGapMs
			}
			t += gap
			out = append(out, Arrival{
				At:     int64(t),
				Class:  c,
				Origin: rng.Intn(z.OriginCount),
			})
			if len(out) == z.NumQueries {
				break
			}
		}
		if len(out) == z.NumQueries {
			break
		}
	}
	Sort(out)
	return out, nil
}

// zipfSampler draws ranks 1..n with P(r) ∝ r^-a by inverse-CDF lookup.
// The standard library's rand.Zipf requires a > 1; the paper uses a = 1,
// so we build the truncated distribution directly.
type zipfSampler struct {
	cdf  []float64
	mean float64
}

func newZipfSampler(a float64, n int) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	mean := 0.0
	for r := 1; r <= n; r++ {
		w := math.Pow(float64(r), -a)
		sum += w
		mean += float64(r) * w
		cdf[r-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf, mean: mean / sum}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// TemplateParams drive the synthesis of the Table 3 class universe.
type TemplateParams struct {
	Classes     int     // 100 in the paper
	MinJoins    int     // 0
	MaxJoins    int     // 49
	Sorted      bool    // templates end in a sort (select-join-project-sort)
	TargetBest  float64 // calibrate avg best execution time to this, ms (2,000)
	Selectivity float64 // intermediate shrink factor per join
}

// Table3Templates returns the template-generation parameters of Table 3.
func Table3Templates() TemplateParams {
	return TemplateParams{
		Classes:     100,
		MinJoins:    0,
		MaxJoins:    49,
		Sorted:      true,
		TargetBest:  2000,
		Selectivity: 0.4,
	}
}

// GenerateTemplates synthesizes the class universe Q over the catalog:
// each class joins a random chain of relations (join count uniform in
// [MinJoins, MaxJoins]) whose mirrors guarantee at least one node can
// evaluate it. When TargetBest > 0 the whole universe is rescaled so the
// average best execution time matches it.
func GenerateTemplates(c *catalog.Catalog, m *costmodel.Model, p TemplateParams, rng *rand.Rand) ([]costmodel.Template, error) {
	if p.Classes <= 0 {
		return nil, fmt.Errorf("workload: Classes must be positive, got %d", p.Classes)
	}
	if p.MinJoins < 0 || p.MaxJoins < p.MinJoins {
		return nil, fmt.Errorf("workload: bad join range [%d,%d]", p.MinJoins, p.MaxJoins)
	}
	sel := p.Selectivity
	if sel <= 0 || sel > 1 {
		sel = 0.4
	}
	ts := make([]costmodel.Template, 0, p.Classes)
	for k := 0; k < p.Classes; k++ {
		t, err := generateTemplate(c, k, p, sel, rng)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	if p.TargetBest > 0 {
		calibrate(m, ts, p.TargetBest)
	}
	return ts, nil
}

// generateTemplate picks a chain of relations all mirrored on at least
// one common node, so the template is evaluable somewhere. It grows the
// chain relation by relation from a seed node's local holdings.
func generateTemplate(c *catalog.Catalog, class int, p TemplateParams, sel float64, rng *rand.Rand) (costmodel.Template, error) {
	joins := p.MinJoins
	if p.MaxJoins > p.MinJoins {
		joins += rng.Intn(p.MaxJoins - p.MinJoins + 1)
	}
	need := joins + 1
	// Retry seeds until some node holds enough relations.
	for attempt := 0; attempt < 10*len(c.Nodes); attempt++ {
		node := c.Nodes[rng.Intn(len(c.Nodes))]
		if len(node.Holds) < need {
			continue
		}
		local := make([]int, 0, len(node.Holds))
		for id := range node.Holds {
			local = append(local, id)
		}
		sort.Ints(local) // map order is random; keep generation deterministic
		rng.Shuffle(len(local), func(i, j int) { local[i], local[j] = local[j], local[i] })
		return costmodel.Template{
			Class:       class,
			Relations:   append([]int(nil), local[:need]...),
			Selectivity: sel,
			Sort:        p.Sorted,
		}, nil
	}
	return costmodel.Template{}, fmt.Errorf("workload: no node holds %d relations for class %d", need, class)
}

// calibrate rescales every template's CostScale by one common factor so
// that the mean best execution time across classes equals target.
func calibrate(m *costmodel.Model, ts []costmodel.Template, target float64) {
	sum, n := 0.0, 0
	for i := range ts {
		if best, _ := m.EstimateBest(ts[i]); best < math.Inf(1) {
			sum += best
			n++
		}
	}
	if n == 0 || sum == 0 {
		return
	}
	factor := target / (sum / float64(n))
	for i := range ts {
		ts[i].CostScale = factor
	}
}
