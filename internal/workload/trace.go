package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Trace I/O: arrival streams serialize to a three-column CSV
// (at_ms, class, origin) so experiments can be recorded once and
// replayed bit-for-bit against different mechanisms or builds.

// WriteCSV writes the arrivals as CSV with a header row.
func WriteCSV(w io.Writer, as []Arrival) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ms", "class", "origin"}); err != nil {
		return err
	}
	for _, a := range as {
		rec := []string{
			strconv.FormatInt(a.At, 10),
			strconv.Itoa(a.Class),
			strconv.Itoa(a.Origin),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Arrivals are returned in
// file order; callers wanting chronological order should Sort them.
func ReadCSV(r io.Reader) ([]Arrival, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if header[0] != "at_ms" || header[1] != "class" || header[2] != "origin" {
		return nil, fmt.Errorf("workload: unexpected trace header %v", header)
	}
	var out []Arrival
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		at, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad at_ms %q", line, rec[0])
		}
		class, err := strconv.Atoi(rec[1])
		if err != nil || class < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad class %q", line, rec[1])
		}
		origin, err := strconv.Atoi(rec[2])
		if err != nil || origin < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad origin %q", line, rec[2])
		}
		out = append(out, Arrival{At: at, Class: class, Origin: origin})
	}
}

// SaveTrace writes the arrivals to a CSV file.
func SaveTrace(path string, as []Arrival) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, as); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a CSV trace file.
func LoadTrace(path string) ([]Arrival, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
