package workload

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := Zipf{Classes: 5, NumQueries: 200, A: 1, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 4}
	orig, err := z.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost arrivals: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestTraceFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	as := []Arrival{{At: 0, Class: 1, Origin: 2}, {At: 10, Class: 0, Origin: 0}}
	if err := SaveTrace(path, as); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != as[0] || got[1] != as[1] {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"x,y\n1,2\n",
		"at_ms,class,origin\nnope,0,0\n",
		"at_ms,class,origin\n-5,0,0\n",
		"at_ms,class,origin\n1,x,0\n",
		"at_ms,class,origin\n1,0,-2\n",
		"at_ms,class,origin\n1,0\n",
	}
	for i, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("garbage %d accepted", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace loaded %d arrivals", len(got))
	}
}
