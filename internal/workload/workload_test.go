package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
)

func TestSinusoidRate(t *testing.T) {
	s := Sinusoid{Freq: 0.05, PeakRate: 10, PhaseDeg: 0, Duration: 20000}
	// Period is 20 s; the crest is at 5 s.
	if got := s.Rate(5000); math.Abs(got-10) > 1e-9 {
		t.Errorf("rate at crest = %g, want 10", got)
	}
	if got := s.Rate(0); got != 0 {
		t.Errorf("rate at 0 = %g, want 0", got)
	}
	// Negative half-wave is clipped to zero.
	if got := s.Rate(15000); got != 0 {
		t.Errorf("rate in negative half = %g, want 0", got)
	}
}

func TestSinusoidPhase(t *testing.T) {
	// A 900° phase shift equals 180°: the two waves are in antiphase.
	a := Sinusoid{Freq: 0.05, PeakRate: 10, PhaseDeg: 0}
	b := Sinusoid{Freq: 0.05, PeakRate: 10, PhaseDeg: 900}
	if a.Rate(5000) == 0 || b.Rate(5000) != 0 {
		t.Error("900° shift should zero the second wave at the first's crest")
	}
	if b.Rate(15000) == 0 {
		t.Error("antiphase wave should peak in the first's trough")
	}
}

func TestSinusoidGenerateCount(t *testing.T) {
	s := Sinusoid{Class: 3, Origin: 7, Freq: 0.05, PeakRate: 20, Duration: 20000}
	as := s.Generate(rand.New(rand.NewSource(1)))
	// Expected arrivals: integral of the clipped sinusoid =
	// Peak/(π f) per cycle ≈ 20/(π·0.05) ≈ 127 over one 20 s cycle.
	want := 20 / (math.Pi * 0.05)
	if got := float64(len(as)); math.Abs(got-want) > want*0.25 {
		t.Errorf("generated %v arrivals, want ~%.0f", got, want)
	}
	for _, a := range as {
		if a.Class != 3 || a.Origin != 7 {
			t.Fatalf("arrival metadata wrong: %+v", a)
		}
		if a.At < 0 || a.At >= 20000 {
			t.Fatalf("arrival time %d outside duration", a.At)
		}
	}
}

func TestSinusoidScatteredOrigins(t *testing.T) {
	s := Sinusoid{Origin: -1, OriginCount: 5, Freq: 0.2, PeakRate: 50, Duration: 10000}
	as := s.Generate(rand.New(rand.NewSource(2)))
	seen := map[int]bool{}
	for _, a := range as {
		if a.Origin < 0 || a.Origin >= 5 {
			t.Fatalf("origin %d outside [0,5)", a.Origin)
		}
		seen[a.Origin] = true
	}
	if len(seen) < 3 {
		t.Errorf("origins not scattered: %v", seen)
	}
}

func TestHalfSecondCounts(t *testing.T) {
	as := []Arrival{{At: 0}, {At: 499}, {At: 500}, {At: 1200}}
	got := HalfSecondCounts(as, 1500)
	want := []int{2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortOrders(t *testing.T) {
	as := []Arrival{{At: 5, Class: 1}, {At: 1, Class: 2}, {At: 5, Class: 0}}
	Sort(as)
	if as[0].At != 1 || as[1].Class != 0 || as[2].Class != 1 {
		t.Errorf("Sort produced %+v", as)
	}
}

func TestZipfValidate(t *testing.T) {
	good := Zipf{Classes: 10, NumQueries: 100, A: 1, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Zipf{
		{Classes: 0, NumQueries: 100, A: 1, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 5},
		{Classes: 10, NumQueries: 0, A: 1, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 5},
		{Classes: 10, NumQueries: 100, A: 0, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 5},
		{Classes: 10, NumQueries: 100, A: 1, MeanGapMs: 0, MaxGapMs: 30000, OriginCount: 5},
		{Classes: 10, NumQueries: 100, A: 1, MeanGapMs: 100, MaxGapMs: 50, OriginCount: 5},
		{Classes: 10, NumQueries: 100, A: 1, MeanGapMs: 100, MaxGapMs: 30000, OriginCount: 0},
	}
	for i, z := range bad {
		if err := z.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestZipfGenerate(t *testing.T) {
	z := Zipf{Classes: 20, NumQueries: 2000, A: 1, MeanGapMs: 500, MaxGapMs: 30000, OriginCount: 10}
	as, err := z.Generate(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(as) != 2000 {
		t.Fatalf("generated %d arrivals, want 2000", len(as))
	}
	perClass := map[int]int{}
	var last int64 = -1
	for _, a := range as {
		if a.At < last {
			t.Fatal("arrivals not sorted")
		}
		last = a.At
		perClass[a.Class]++
		if a.Origin < 0 || a.Origin >= 10 {
			t.Fatalf("origin %d out of range", a.Origin)
		}
	}
	if len(perClass) != 20 {
		t.Errorf("classes used = %d, want 20", len(perClass))
	}
	for c, n := range perClass {
		if n != 100 {
			t.Errorf("class %d received %d queries, want 100", c, n)
		}
	}
}

func TestZipfMeanGap(t *testing.T) {
	// With a large cap the empirical mean gap should track MeanGapMs.
	z := Zipf{Classes: 1, NumQueries: 20000, A: 1, MeanGapMs: 200, MaxGapMs: 1e9, OriginCount: 1}
	as, err := z.Generate(rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 1; i < len(as); i++ {
		sum += float64(as[i].At - as[i-1].At)
	}
	mean := sum / float64(len(as)-1)
	if math.Abs(mean-200) > 40 {
		t.Errorf("empirical mean gap %.1f, want ~200", mean)
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	s := newZipfSampler(1, 1000)
	rng := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[s.sample(rng)]++
	}
	// P(1) should be about twice P(2) under exponent 1.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("P(1)/P(2) = %.2f, want ~2", ratio)
	}
	if counts[1] < counts[10] {
		t.Error("distribution not decreasing")
	}
}

func workloadFixture(t *testing.T) (*catalog.Catalog, *costmodel.Model) {
	t.Helper()
	p := catalog.Table3()
	p.Nodes = 20
	p.Relations = 200
	p.HashJoinNodes = 19
	c, err := catalog.Generate(p, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return c, costmodel.New(c)
}

func TestGenerateTemplates(t *testing.T) {
	c, m := workloadFixture(t)
	p := Table3Templates()
	p.Classes = 30
	p.MaxJoins = 8 // small federation holds ~50 relations per node
	ts, err := GenerateTemplates(c, m, p, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatalf("GenerateTemplates: %v", err)
	}
	if len(ts) != 30 {
		t.Fatalf("%d templates, want 30", len(ts))
	}
	var sum float64
	for i, tmpl := range ts {
		if tmpl.Class != i {
			t.Errorf("template %d has class %d", i, tmpl.Class)
		}
		if err := tmpl.Validate(c); err != nil {
			t.Errorf("template %d invalid: %v", i, err)
		}
		best, node := m.EstimateBest(tmpl)
		if node < 0 {
			t.Errorf("template %d evaluable nowhere", i)
			continue
		}
		sum += best
	}
	// Calibration target: mean best execution time ~2000 ms.
	mean := sum / float64(len(ts))
	if math.Abs(mean-2000) > 50 {
		t.Errorf("mean best execution %.0f ms, want ~2000", mean)
	}
}

func TestGenerateTemplatesJoinRange(t *testing.T) {
	c, m := workloadFixture(t)
	p := TemplateParams{Classes: 40, MinJoins: 2, MaxJoins: 5, Selectivity: 0.4}
	ts, err := GenerateTemplates(c, m, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tmpl := range ts {
		if j := tmpl.Joins(); j < 2 || j > 5 {
			t.Errorf("joins %d outside [2,5]", j)
		}
	}
}

func TestGenerateTemplatesRejectsBadParams(t *testing.T) {
	c, m := workloadFixture(t)
	if _, err := GenerateTemplates(c, m, TemplateParams{Classes: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero classes accepted")
	}
	if _, err := GenerateTemplates(c, m, TemplateParams{Classes: 1, MinJoins: 5, MaxJoins: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("inverted join range accepted")
	}
	// Impossible join count: more relations than any node holds.
	if _, err := GenerateTemplates(c, m, TemplateParams{Classes: 1, MinJoins: 10000, MaxJoins: 10000}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized join count accepted")
	}
}

func TestGenerateTemplatesDeterministic(t *testing.T) {
	c, m := workloadFixture(t)
	p := TemplateParams{Classes: 10, MaxJoins: 4, Selectivity: 0.4}
	a, err := GenerateTemplates(c, m, p, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTemplates(c, m, p, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Relations) != len(b[i].Relations) {
			t.Fatalf("template %d differs across identical seeds", i)
		}
		for j := range a[i].Relations {
			if a[i].Relations[j] != b[i].Relations[j] {
				t.Fatalf("template %d relation %d differs", i, j)
			}
		}
	}
}
