package autoscale

import (
	"github.com/qamarket/qamarket/internal/cluster"
)

// ClientSource polls a federation through a cluster client's dynamic
// membership view: one stats RPC per live member, telemetry lifted off
// the additive market field. Members that are unreachable, mid-drain
// past their stats window, or too old to carry the field are simply
// skipped — the controller is built to tolerate any answering subset.
type ClientSource struct {
	Client *cluster.Client
}

// Sample implements Source.
func (s ClientSource) Sample() []Sample {
	var out []Sample
	for _, m := range s.Client.Members() {
		switch m.State {
		case "alive", "suspect", "seed":
		default:
			continue // left/dead members own no supply to count
		}
		st, err := s.Client.Stats(m.ID)
		if err != nil || st.Market == nil {
			continue
		}
		out = append(out, Sample{ID: m.ID, Telemetry: *st.Market})
	}
	return out
}
