// Package autoscale closes the telemetry loop: a deterministic
// controller that reads each member's per-period market telemetry,
// smooths the federation-wide price / rejection / unsold series, and
// turns sustained pressure or glut into bounded replica launches and
// graceful drains.
//
// The market itself is the sensor (Wellman's market-oriented
// programming): QA-NT prices rise only on trading failures and fall
// only on unsold supply, so a sustained high smoothed price or
// rejection rate *is* the statement "demand exceeds this federation's
// capacity", and a sustained unsold rate is its dual. The controller
// deliberately never touches prices, supply vectors, or per-node
// pricer state — it only changes the number of market participants.
// That single-writer split is what keeps the scaler from fighting the
// pricer: the market converges within a population, the scaler moves
// between populations, and the guardrails (EWMA smoothing, warmup,
// cooldown, hysteresis bands, max-step) keep the population changes
// slower than the market's own price adjustment.
//
// Everything is explicit and injectable: the clock, the telemetry
// source, the actuator. Tick is synchronous — one call polls, smooths,
// decides, actuates, and returns the full explainable Decision record.
package autoscale

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
)

// Clock supplies the decision timestamps (never the control flow —
// pacing belongs to whoever calls Tick). Nil means time.Now.
type Clock func() time.Time

// Sample is one member's telemetry poll result.
type Sample struct {
	// ID is the member's stable node ID (baselines for counter deltas
	// are keyed by it).
	ID string
	// Telemetry is the member's market snapshot.
	Telemetry cluster.MarketTelemetry
}

// Source yields one telemetry sample per reachable member. Members
// that are gone, joining, or mid-drain are simply absent — the
// controller tolerates any subset.
type Source interface {
	Sample() []Sample
}

// Actuator applies scaling actions through existing machinery: Launch
// starts n replicas that join the federation by gossip, Drain retires
// n replicas through the graceful drain path.
type Actuator interface {
	Launch(n int) error
	Drain(n int) error
}

// Config carries the controller's bands and guardrails. Zero values
// take the documented defaults, so Config{Min: 1, Max: 8} is runnable.
type Config struct {
	// Min and Max cap the replica count the controller will ever
	// target (water-filling output is clamped into [Min, Max]).
	Min, Max int
	// CapacityMs is one replica's supply per market period, the bin
	// size of the water-filling. Set it to the fleet's PeriodMs
	// (default 500, the qanode default period).
	CapacityMs float64
	// Alpha is the EWMA weight of the newest observation, 0 < α ≤ 1
	// (default 0.3: ~3 periods to absorb a step change).
	Alpha float64
	// Warmup is the number of ticks observed before the first action
	// may fire (default 2: a delta needs two polls to exist).
	Warmup int
	// Cooldown is the minimum number of ticks between actions
	// (default 3). It must outlast join/drain latency, or the
	// controller double-corrects against a fleet still in transition.
	Cooldown int
	// MaxStep bounds |replicas changed| per decision (default 1).
	MaxStep int
	// UpRejectRate and UpPriceIndex are the scale-up hysteresis band:
	// pressure exists when the smoothed rejection rate or the smoothed
	// demand-weighted price index crosses its edge (defaults 0.15 and
	// 2× the unit initial price).
	UpRejectRate, UpPriceIndex float64
	// DownUnsoldRate and DownRejectRate are the scale-down band: glut
	// requires the smoothed unsold share above DownUnsoldRate (default
	// 0.6) while the smoothed rejection rate sits below DownRejectRate
	// (default 0.02). The dead zone between the bands is the
	// hysteresis that prevents launch/drain flapping.
	DownUnsoldRate, DownRejectRate float64
	// DryRun records every decision but never calls the actuator.
	DryRun bool
	// History is the decision ring capacity (default 128).
	History int
	// Clock stamps decisions; nil means time.Now.
	Clock Clock
}

func (c *Config) applyDefaults() error {
	if c.Min < 0 || c.Max < c.Min || c.Max == 0 {
		return fmt.Errorf("autoscale: need 0 <= Min <= Max with Max > 0 (got %d..%d)", c.Min, c.Max)
	}
	if c.CapacityMs <= 0 {
		c.CapacityMs = 500
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Warmup <= 0 {
		c.Warmup = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 1
	}
	if c.UpRejectRate <= 0 {
		c.UpRejectRate = 0.15
	}
	if c.UpPriceIndex <= 0 {
		c.UpPriceIndex = 2
	}
	if c.DownUnsoldRate <= 0 {
		c.DownUnsoldRate = 0.6
	}
	if c.DownRejectRate <= 0 {
		c.DownRejectRate = 0.02
	}
	if c.History <= 0 {
		c.History = 128
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Signals are one tick's federation-wide aggregates, raw and smoothed.
type Signals struct {
	// Members is how many members answered this poll.
	Members int `json:"members"`
	// Offers/Accepts/Rejects/Unsold are this tick's deltas of the
	// members' lifetime trading counters (new members contribute from
	// their next poll; restarted members re-baseline).
	Offers  int `json:"offers"`
	Accepts int `json:"accepts"`
	Rejects int `json:"rejects"`
	Unsold  int `json:"unsold"`
	// RejectRate is rejects/(offers+rejects): the share of requests the
	// federation had no supply for.
	RejectRate float64 `json:"reject_rate"`
	// UnsoldRate is unsold/(unsold+accepts): the share of supplied
	// units that found no buyer.
	UnsoldRate float64 `json:"unsold_rate"`
	// PriceIndex is the demand-weighted mean class price.
	PriceIndex float64 `json:"price_index"`
	// DemandMs estimates offered work per market period in
	// milliseconds: sold work plus the work behind rejected requests.
	DemandMs float64 `json:"demand_ms"`
	// Smoothed counterparts (EWMA over the configured alpha).
	SmoothedRejectRate float64 `json:"smoothed_reject_rate"`
	SmoothedUnsoldRate float64 `json:"smoothed_unsold_rate"`
	SmoothedPriceIndex float64 `json:"smoothed_price_index"`
	SmoothedDemandMs   float64 `json:"smoothed_demand_ms"`
}

// Decision is one tick's explainable record: inputs → smoothed signals
// → water-filled target → clamped action. Every tick produces one,
// acted on or not.
type Decision struct {
	At      time.Time `json:"at"`
	Tick    int       `json:"tick"`
	Signals Signals   `json:"signals"`
	// Current is the observed replica count (members that answered).
	Current int `json:"current"`
	// RawTarget is the unclamped water-filling output; Target is
	// RawTarget clamped into [Min, Max].
	RawTarget int `json:"raw_target"`
	Target    int `json:"target"`
	// Action is the clamped step this tick: +n launched, −n drained,
	// 0 hold. Bounded by MaxStep and gated by the guardrails.
	Action int `json:"action"`
	// Applied is false when the action was withheld (dry-run) or the
	// actuator failed.
	Applied bool `json:"applied"`
	// Reason explains the action — or the hold.
	Reason string `json:"reason"`
}

// ewma is one exponentially smoothed series; the first observation
// seeds it.
type ewma struct {
	v    float64
	init bool
}

func (e *ewma) observe(x, alpha float64) float64 {
	if !e.init {
		e.v, e.init = x, true
	} else {
		e.v = alpha*x + (1-alpha)*e.v
	}
	return e.v
}

// baseline is one member's last-seen lifetime counters.
type baseline struct {
	stats    cluster.MarketTelemetry
	seenTick int
}

// baselineTTLTicks is how many ticks a member may miss polls before
// its counter baseline is forgotten (a member that returns later
// re-baselines, contributing nothing on its first poll back).
const baselineTTLTicks = 10

// Controller is the market-driven autoscaler. Not safe for concurrent
// Tick calls; the accessors are safe alongside one ticking goroutine.
type Controller struct {
	cfg Config
	src Source
	act Actuator

	mu         sync.Mutex
	tick       int
	lastAction int // tick of the last (possibly dry-run) action; -1 before any
	base       map[string]baseline
	sRej       ewma
	sUnsold    ewma
	sPrice     ewma
	sDemand    ewma
	decisions  []Decision
	launched   int64 // lifetime replicas launched
	drained    int64 // lifetime replicas drained
}

// New builds a controller over a telemetry source and an actuator.
func New(cfg Config, src Source, act Actuator) (*Controller, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("autoscale: nil telemetry source")
	}
	if act == nil && !cfg.DryRun {
		return nil, fmt.Errorf("autoscale: nil actuator outside dry-run")
	}
	return &Controller{cfg: cfg, src: src, act: act, lastAction: -1,
		base: make(map[string]baseline)}, nil
}

// Tick runs one control period: poll, aggregate, smooth, decide,
// actuate. It returns the decision record it appended to the ring.
func (c *Controller) Tick() Decision {
	samples := c.src.Sample()
	// Deterministic aggregation order regardless of source iteration.
	sort.Slice(samples, func(i, j int) bool { return samples[i].ID < samples[j].ID })

	c.mu.Lock()
	defer c.mu.Unlock()
	tick := c.tick
	c.tick++

	d := Decision{At: c.cfg.Clock(), Tick: tick, Current: len(samples)}
	d.Signals = c.aggregateLocked(tick, samples)
	d.RawTarget = c.waterfillLocked(samples, d.Signals.SmoothedDemandMs)
	d.Target = clamp(d.RawTarget, c.cfg.Min, c.cfg.Max)

	d.Action, d.Reason = c.decideLocked(tick, d)
	if d.Action != 0 {
		c.lastAction = tick
		d.Applied = c.applyLocked(&d)
	}
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > c.cfg.History {
		c.decisions = c.decisions[len(c.decisions)-c.cfg.History:]
	}
	return d
}

// aggregateLocked deltas each answering member's lifetime counters
// against its baseline and folds the tick's raw and smoothed signals.
// Members absent from this poll are skipped (their baselines survive
// baselineTTLTicks); members whose counters regressed (a restart)
// re-baseline and contribute nothing this tick. All rates are guarded
// against zero denominators — the signals never go NaN.
func (c *Controller) aggregateLocked(tick int, samples []Sample) Signals {
	var s Signals
	s.Members = len(samples)
	var priceWeight, priceSum float64
	var demand float64
	for _, sm := range samples {
		cur := sm.Telemetry
		prev, seen := c.base[sm.ID]
		c.base[sm.ID] = baseline{stats: cur, seenTick: tick}
		if !seen || regressed(prev.stats, cur) {
			continue // first sight (or rebirth): baseline only
		}
		dOffers := cur.Stats.Offers - prev.stats.Stats.Offers
		dAccepts := cur.Stats.Accepts - prev.stats.Stats.Accepts
		dRejects := cur.Stats.Rejects - prev.stats.Stats.Rejects
		dUnsold := cur.Stats.Unsold - prev.stats.Stats.Unsold
		dPeriods := cur.Stats.Periods - prev.stats.Stats.Periods
		if dPeriods < 1 {
			dPeriods = 1
		}
		s.Offers += dOffers
		s.Accepts += dAccepts
		s.Rejects += dRejects
		s.Unsold += dUnsold

		// The member's mean class cost, weighted by what actually sold
		// this period; a member with no sales yet averages its known
		// class estimates.
		var costW, costSum, costN, costTot float64
		for _, cl := range cur.Classes {
			costN++
			costTot += cl.CostMs
			if cl.Accepted > 0 {
				costW += float64(cl.Accepted)
				costSum += float64(cl.Accepted) * cl.CostMs
				priceWeight += float64(cl.Accepted)
				priceSum += float64(cl.Accepted) * cl.Price
			}
		}
		meanCost := 0.0
		switch {
		case costW > 0:
			meanCost = costSum / costW
		case costN > 0:
			meanCost = costTot / costN
		}
		// Demand per period: every accept or reject was one request of
		// ~meanCost ms. Rejected requests are exactly the work a larger
		// federation would have sold.
		demand += float64(dAccepts+dRejects) * meanCost / float64(dPeriods)
	}
	if tot := s.Offers + s.Rejects; tot > 0 {
		s.RejectRate = float64(s.Rejects) / float64(tot)
	}
	if tot := s.Unsold + s.Accepts; tot > 0 {
		s.UnsoldRate = float64(s.Unsold) / float64(tot)
	}
	if priceWeight > 0 {
		s.PriceIndex = priceSum / priceWeight
	}
	s.DemandMs = demand

	// An empty poll (no members answered) freezes the smoothed series
	// rather than decaying them toward zero on no evidence.
	if s.Members > 0 {
		s.SmoothedRejectRate = c.sRej.observe(s.RejectRate, c.cfg.Alpha)
		s.SmoothedUnsoldRate = c.sUnsold.observe(s.UnsoldRate, c.cfg.Alpha)
		s.SmoothedPriceIndex = c.sPrice.observe(s.PriceIndex, c.cfg.Alpha)
		s.SmoothedDemandMs = c.sDemand.observe(s.DemandMs, c.cfg.Alpha)
	} else {
		s.SmoothedRejectRate = c.sRej.v
		s.SmoothedUnsoldRate = c.sUnsold.v
		s.SmoothedPriceIndex = c.sPrice.v
		s.SmoothedDemandMs = c.sDemand.v
	}
	c.pruneLocked(tick)
	return s
}

// regressed reports a lifetime counter moving backwards — the member
// restarted (or a namesake replaced it) and deltas would go negative.
func regressed(prev, cur cluster.MarketTelemetry) bool {
	return cur.Stats.Offers < prev.Stats.Offers ||
		cur.Stats.Accepts < prev.Stats.Accepts ||
		cur.Stats.Rejects < prev.Stats.Rejects ||
		cur.Stats.Unsold < prev.Stats.Unsold ||
		cur.Stats.Periods < prev.Stats.Periods
}

// pruneLocked forgets baselines of members not seen for
// baselineTTLTicks.
func (c *Controller) pruneLocked(tick int) {
	for id, b := range c.base {
		if tick-b.seenTick > baselineTTLTicks {
			delete(c.base, id)
		}
	}
}

// waterfillLocked pours the smoothed federation demand, split per
// class, into replica-sized bins of CapacityMs and reports how many
// bins the demand fills (always at least one when there is any
// demand). Classes are poured in sorted-signature order so the fill is
// deterministic; the split is proportional to each class's currently
// sold work, with a single pseudo-class carrying demand the class
// table cannot attribute yet.
func (c *Controller) waterfillLocked(samples []Sample, demandMs float64) int {
	if demandMs <= 0 {
		return 0
	}
	// Class weights: period-to-date sold work per signature across the
	// federation.
	weights := make(map[string]float64)
	var total float64
	for _, sm := range samples {
		for _, cl := range sm.Telemetry.Classes {
			if cl.Accepted > 0 && cl.CostMs > 0 {
				w := float64(cl.Accepted) * cl.CostMs
				weights[cl.Signature] += w
				total += w
			}
		}
	}
	type share struct {
		sig string
		ms  float64
	}
	var shares []share
	if total <= 0 {
		shares = []share{{sig: "*", ms: demandMs}}
	} else {
		sigs := make([]string, 0, len(weights))
		for sig := range weights {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			shares = append(shares, share{sig: sig, ms: demandMs * weights[sig] / total})
		}
	}
	// Pour sequentially: each replica bin holds CapacityMs; a class
	// share spills into as many further bins as it needs.
	bins, room := 0, 0.0
	for _, sh := range shares {
		ms := sh.ms
		for ms > 1e-9 {
			if room <= 1e-9 {
				bins++
				room = c.cfg.CapacityMs
			}
			pour := ms
			if pour > room {
				pour = room
			}
			ms -= pour
			room -= pour
		}
	}
	return bins
}

// decideLocked applies the guardrails in order — warmup, evidence,
// cooldown, hysteresis bands, max-step — and returns the clamped
// action with its explanation.
func (c *Controller) decideLocked(tick int, d Decision) (int, string) {
	s := d.Signals
	if tick < c.cfg.Warmup {
		return 0, fmt.Sprintf("warmup %d/%d", tick+1, c.cfg.Warmup)
	}
	if s.Members == 0 {
		return 0, "no members answered the poll"
	}
	if c.lastAction >= 0 && tick-c.lastAction < c.cfg.Cooldown {
		return 0, fmt.Sprintf("cooldown %d/%d ticks since last action", tick-c.lastAction, c.cfg.Cooldown)
	}
	if d.Current < c.cfg.Min {
		step := min(c.cfg.MaxStep, c.cfg.Min-d.Current)
		return step, fmt.Sprintf("below Min: %d < %d", d.Current, c.cfg.Min)
	}
	pressure := s.SmoothedRejectRate >= c.cfg.UpRejectRate ||
		s.SmoothedPriceIndex >= c.cfg.UpPriceIndex
	glut := s.SmoothedUnsoldRate >= c.cfg.DownUnsoldRate &&
		s.SmoothedRejectRate <= c.cfg.DownRejectRate
	switch {
	case d.Target > d.Current && pressure:
		step := min(c.cfg.MaxStep, d.Target-d.Current)
		if d.Current+step > c.cfg.Max {
			step = c.cfg.Max - d.Current
		}
		if step <= 0 {
			return 0, fmt.Sprintf("pressure but already at Max %d", c.cfg.Max)
		}
		return step, fmt.Sprintf("pressure: reject %.3f >= %.3f or price %.2f >= %.2f, demand wants %d replicas",
			s.SmoothedRejectRate, c.cfg.UpRejectRate, s.SmoothedPriceIndex, c.cfg.UpPriceIndex, d.Target)
	case d.Target < d.Current && glut:
		step := min(c.cfg.MaxStep, d.Current-d.Target)
		if d.Current-step < c.cfg.Min {
			step = d.Current - c.cfg.Min
		}
		if step <= 0 {
			return 0, fmt.Sprintf("glut but already at Min %d", c.cfg.Min)
		}
		return -step, fmt.Sprintf("glut: unsold %.3f >= %.3f with reject %.3f <= %.3f, demand needs only %d replicas",
			s.SmoothedUnsoldRate, c.cfg.DownUnsoldRate, s.SmoothedRejectRate, c.cfg.DownRejectRate, d.Target)
	case d.Target > d.Current:
		return 0, fmt.Sprintf("demand wants %d replicas but no pressure band crossed", d.Target)
	case d.Target < d.Current:
		return 0, fmt.Sprintf("demand needs %d replicas but no glut band crossed", d.Target)
	}
	return 0, "in band: target equals current"
}

// applyLocked performs the decided action through the actuator (or
// withholds it in dry-run), annotating the decision's reason on
// withhold/failure.
func (c *Controller) applyLocked(d *Decision) bool {
	if c.cfg.DryRun {
		d.Reason += " [dry-run: withheld]"
		return false
	}
	var err error
	if d.Action > 0 {
		err = c.act.Launch(d.Action)
	} else {
		err = c.act.Drain(-d.Action)
	}
	if err != nil {
		d.Reason += fmt.Sprintf(" [actuator failed: %v]", err)
		return false
	}
	if d.Action > 0 {
		c.launched += int64(d.Action)
	} else {
		c.drained += int64(-d.Action)
	}
	return true
}

// Decisions returns a copy of the retained decision ring, oldest
// first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// Last returns the most recent decision (ok=false before the first
// tick).
func (c *Controller) Last() (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.decisions) == 0 {
		return Decision{}, false
	}
	return c.decisions[len(c.decisions)-1], true
}

// Totals reports lifetime replicas launched and drained.
func (c *Controller) Totals() (launched, drained int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.launched, c.drained
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
