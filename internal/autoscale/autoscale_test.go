package autoscale

import (
	"math"
	"testing"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/market"
)

// tel builds one member's telemetry snapshot from lifetime counters.
func tel(periods, offers, accepts, rejects, unsold int, classes ...cluster.ClassTelemetry) cluster.MarketTelemetry {
	return cluster.MarketTelemetry{
		Active: true,
		Stats: market.Stats{
			Periods: periods, Offers: offers, Accepts: accepts,
			Rejects: rejects, Unsold: unsold,
		},
		Classes: classes,
	}
}

// class builds one class row.
func class(sig string, costMs, price float64, accepted int) cluster.ClassTelemetry {
	return cluster.ClassTelemetry{Signature: sig, CostMs: costMs, Price: price, Accepted: accepted}
}

// scriptSource replays a fixed sequence of polls; past the end it
// repeats the last one.
type scriptSource struct {
	polls [][]Sample
	i     int
}

func (s *scriptSource) Sample() []Sample {
	idx := s.i
	if idx >= len(s.polls) {
		idx = len(s.polls) - 1
	}
	s.i++
	return append([]Sample(nil), s.polls[idx]...)
}

// countingActuator records every action.
type countingActuator struct {
	launches, drains []int
}

func (a *countingActuator) Launch(n int) error { a.launches = append(a.launches, n); return nil }
func (a *countingActuator) Drain(n int) error  { a.drains = append(a.drains, n); return nil }

func fixedClock() Clock {
	t := time.Unix(5000, 0)
	return func() time.Time { return t }
}

// checkFinite fails the test if any signal in the decision is NaN or
// infinite.
func checkFinite(t *testing.T, d Decision) {
	t.Helper()
	s := d.Signals
	for name, v := range map[string]float64{
		"reject_rate": s.RejectRate, "unsold_rate": s.UnsoldRate,
		"price_index": s.PriceIndex, "demand_ms": s.DemandMs,
		"smoothed_reject_rate": s.SmoothedRejectRate,
		"smoothed_unsold_rate": s.SmoothedUnsoldRate,
		"smoothed_price_index": s.SmoothedPriceIndex,
		"smoothed_demand_ms":   s.SmoothedDemandMs,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("tick %d: signal %s is %v", d.Tick, name, v)
		}
	}
}

// TestAggregationUnderChurn is the satellite coverage test: the
// federation-wide smoothed signals must stay stable — finite, with
// non-negative deltas, cooldown respected — while members join, leave,
// drain, and restart mid-poll.
func TestAggregationUnderChurn(t *testing.T) {
	a := func(off, acc, rej, uns, periods int) Sample {
		return Sample{ID: "a", Telemetry: tel(periods, off, acc, rej, uns, class("q1", 20, 1.5, 2))}
	}
	b := func(off, acc, rej, uns, periods int) Sample {
		return Sample{ID: "b", Telemetry: tel(periods, off, acc, rej, uns, class("q1", 20, 1.2, 1))}
	}
	cases := []struct {
		name  string
		polls [][]Sample
	}{
		{
			name: "member joins mid-poll",
			polls: [][]Sample{
				{a(10, 8, 2, 1, 1)},
				{a(20, 16, 4, 2, 2)},
				{a(30, 24, 6, 3, 3), b(5, 4, 1, 0, 1)}, // b's first sight: baseline only
				{a(40, 32, 8, 4, 4), b(10, 8, 2, 0, 2)},
			},
		},
		{
			name: "member leaves mid-poll",
			polls: [][]Sample{
				{a(10, 8, 2, 1, 1), b(10, 9, 1, 1, 1)},
				{a(20, 16, 4, 2, 2), b(20, 18, 2, 2, 2)},
				{a(30, 24, 6, 3, 3)}, // b gone: skipped, no contribution
				{a(40, 32, 8, 4, 4)},
			},
		},
		{
			name: "member restarts with regressed counters",
			polls: [][]Sample{
				{a(10, 8, 2, 1, 5)},
				{a(20, 16, 4, 2, 6)},
				{a(3, 2, 1, 0, 1)}, // restart: lifetime counters regressed
				{a(6, 4, 2, 0, 2)},
			},
		},
		{
			name: "empty poll freezes the smoothed series",
			polls: [][]Sample{
				{a(10, 8, 2, 1, 1)},
				{a(20, 16, 4, 2, 2)},
				{}, // nobody answered
				{a(30, 24, 6, 3, 3)},
			},
		},
		{
			name: "zero-cost classes stay NaN-free",
			polls: [][]Sample{
				{Sample{ID: "z", Telemetry: tel(1, 4, 0, 4, 0, class("free", 0, 1, 0))}},
				{Sample{ID: "z", Telemetry: tel(2, 8, 0, 8, 0, class("free", 0, 1, 0))}},
				{Sample{ID: "z", Telemetry: tel(3, 12, 0, 12, 0, class("free", 0, 1, 0))}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			act := &countingActuator{}
			ctl, err := New(Config{
				Min: 1, Max: 4, CapacityMs: 100, Cooldown: 2, MaxStep: 1,
				Warmup: 1, Clock: fixedClock(),
			}, &scriptSource{polls: tc.polls}, act)
			if err != nil {
				t.Fatal(err)
			}
			lastAction := -10
			for i := 0; i < len(tc.polls)+2; i++ {
				d := ctl.Tick()
				checkFinite(t, d)
				if d.Signals.Offers < 0 || d.Signals.Accepts < 0 || d.Signals.Rejects < 0 || d.Signals.Unsold < 0 {
					t.Fatalf("tick %d: negative delta in signals %+v", d.Tick, d.Signals)
				}
				if d.Action != 0 {
					if d.Tick-lastAction < 2 {
						t.Fatalf("cooldown violated: actions at ticks %d and %d", lastAction, d.Tick)
					}
					lastAction = d.Tick
				}
			}
		})
	}
}

// TestScaleUpBoundedByMaxStepAndCooldown drives sustained rejection
// pressure with demand worth many replicas and checks every launch is
// clamped to MaxStep with at least Cooldown ticks between actions.
func TestScaleUpBoundedByMaxStepAndCooldown(t *testing.T) {
	// One member, each tick +40 offers / +10 accepts / +30 rejects over
	// one period at 50ms per query: demand ≈ 2000ms/period against
	// 100ms replica bins → raw target ~20, clamped to Max.
	var polls [][]Sample
	for i := 1; i <= 12; i++ {
		polls = append(polls, []Sample{{
			ID:        "a",
			Telemetry: tel(i, 10*i+30*i, 10*i, 30*i, 0, class("q1", 50, 3, 5)),
		}})
	}
	act := &countingActuator{}
	ctl, err := New(Config{
		Min: 1, Max: 8, CapacityMs: 100, Alpha: 0.5, Warmup: 1,
		Cooldown: 3, MaxStep: 2, Clock: fixedClock(),
	}, &scriptSource{polls: polls}, act)
	if err != nil {
		t.Fatal(err)
	}
	var actionTicks []int
	for i := 0; i < 12; i++ {
		d := ctl.Tick()
		checkFinite(t, d)
		if d.Action < 0 {
			t.Fatalf("tick %d: drained under pressure: %+v", d.Tick, d)
		}
		if d.Action > 2 {
			t.Fatalf("tick %d: action %d exceeds MaxStep 2", d.Tick, d.Action)
		}
		if d.Action != 0 {
			actionTicks = append(actionTicks, d.Tick)
		}
	}
	if len(act.launches) == 0 {
		t.Fatalf("sustained pressure never launched a replica")
	}
	for i := 1; i < len(actionTicks); i++ {
		if actionTicks[i]-actionTicks[i-1] < 3 {
			t.Fatalf("actions at ticks %v violate cooldown 3", actionTicks)
		}
	}
	if len(act.drains) != 0 {
		t.Fatalf("unexpected drains under pressure: %v", act.drains)
	}
}

// TestGlutDrainsTowardMin drives a three-member federation whose
// supply goes entirely unsold and checks the controller drains —
// bounded by MaxStep — but never below Min.
func TestGlutDrainsTowardMin(t *testing.T) {
	mk := func(i int) []Sample {
		var out []Sample
		for _, id := range []string{"a", "b", "c"} {
			// Supply planned every period, nothing sells: unsold grows,
			// rejects stay zero.
			out = append(out, Sample{ID: id, Telemetry: tel(i, 0, 0, 0, 5*i, class("q1", 20, 0.5, 0))})
		}
		return out
	}
	var polls [][]Sample
	for i := 1; i <= 14; i++ {
		polls = append(polls, mk(i))
	}
	act := &countingActuator{}
	ctl, err := New(Config{
		Min: 1, Max: 4, CapacityMs: 100, Alpha: 0.5, Warmup: 1,
		Cooldown: 2, MaxStep: 1, Clock: fixedClock(),
	}, &scriptSource{polls: polls}, act)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		d := ctl.Tick()
		checkFinite(t, d)
		if d.Action > 0 {
			t.Fatalf("tick %d: launched during glut: %+v", d.Tick, d)
		}
		if d.Action < -1 {
			t.Fatalf("tick %d: drain %d exceeds MaxStep 1", d.Tick, -d.Action)
		}
		if d.Current+d.Action < 1 {
			t.Fatalf("tick %d: decision takes fleet below Min: %+v", d.Tick, d)
		}
	}
	if len(act.drains) == 0 {
		t.Fatalf("sustained glut never drained a replica")
	}
}

// TestDryRunWithholdsActions checks dry-run records the would-be
// action but never calls an actuator.
func TestDryRunWithholdsActions(t *testing.T) {
	var polls [][]Sample
	for i := 1; i <= 8; i++ {
		polls = append(polls, []Sample{{
			ID:        "a",
			Telemetry: tel(i, 40*i, 10*i, 30*i, 0, class("q1", 50, 3, 5)),
		}})
	}
	ctl, err := New(Config{
		Min: 1, Max: 8, CapacityMs: 100, Alpha: 0.5, Warmup: 1,
		Cooldown: 2, MaxStep: 1, DryRun: true, Clock: fixedClock(),
	}, &scriptSource{polls: polls}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sawAction := false
	for i := 0; i < 8; i++ {
		d := ctl.Tick()
		if d.Action != 0 {
			sawAction = true
			if d.Applied {
				t.Fatalf("tick %d: dry-run applied an action: %+v", d.Tick, d)
			}
		}
	}
	if !sawAction {
		t.Fatalf("dry-run under pressure recorded no would-be action")
	}
	if launched, drained := ctl.Totals(); launched != 0 || drained != 0 {
		t.Fatalf("dry-run counted applied actions: launched=%d drained=%d", launched, drained)
	}
}

// TestWaterfillDeterministic pins the water-filling arithmetic: demand
// split over sorted class signatures into CapacityMs bins.
func TestWaterfillDeterministic(t *testing.T) {
	ctl, err := New(Config{Min: 1, Max: 100, CapacityMs: 100, Clock: fixedClock()},
		&scriptSource{polls: [][]Sample{{}}}, &countingActuator{})
	if err != nil {
		t.Fatal(err)
	}
	samples := []Sample{
		{ID: "a", Telemetry: tel(1, 0, 0, 0, 0,
			class("q1", 20, 1, 3), // weight 60
			class("q2", 10, 1, 4), // weight 40
		)},
	}
	cases := []struct {
		demand float64
		want   int
	}{
		{0, 0},
		{50, 1},
		{100, 1},
		{101, 2},
		{250, 3},
		{1000, 10},
	}
	for _, tc := range cases {
		if got := ctl.waterfillLocked(samples, tc.demand); got != tc.want {
			t.Fatalf("waterfill(%v) = %d, want %d", tc.demand, got, tc.want)
		}
		// Same inputs, same output — the fill is deterministic.
		if again := ctl.waterfillLocked(samples, tc.demand); again != ctl.waterfillLocked(samples, tc.demand) {
			t.Fatalf("waterfill(%v) nondeterministic: %d then %d", tc.demand, again, ctl.waterfillLocked(samples, tc.demand))
		}
	}
	// With no attributable class weight the demand still fills bins
	// through the pseudo-class.
	if got := ctl.waterfillLocked(nil, 350); got != 4 {
		t.Fatalf("unattributed waterfill(350) = %d, want 4", got)
	}
}

// TestBelowMinScalesUpWithoutPressure: the Min floor is a guarantee,
// not a suggestion — an undersized fleet grows even with quiet
// signals.
func TestBelowMinScalesUpWithoutPressure(t *testing.T) {
	polls := [][]Sample{
		{{ID: "a", Telemetry: tel(1, 4, 4, 0, 0, class("q1", 20, 1, 1))}},
		{{ID: "a", Telemetry: tel(2, 8, 8, 0, 0, class("q1", 20, 1, 1))}},
		{{ID: "a", Telemetry: tel(3, 12, 12, 0, 0, class("q1", 20, 1, 1))}},
		{{ID: "a", Telemetry: tel(4, 16, 16, 0, 0, class("q1", 20, 1, 1))}},
	}
	act := &countingActuator{}
	ctl, err := New(Config{
		Min: 3, Max: 6, CapacityMs: 100, Warmup: 1, Cooldown: 1, MaxStep: 1,
		Clock: fixedClock(),
	}, &scriptSource{polls: polls}, act)
	if err != nil {
		t.Fatal(err)
	}
	var up int
	for i := 0; i < 4; i++ {
		d := ctl.Tick()
		if d.Action > 0 {
			up += d.Action
		}
	}
	if up == 0 {
		t.Fatalf("fleet below Min never scaled up")
	}
}
