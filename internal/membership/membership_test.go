package membership

import (
	"math/rand"
	"testing"
)

func newTestReg(t *testing.T, id string, seed int64) *Registry {
	t.Helper()
	r, err := New(Config{
		Self: Member{ID: id, Addr: "127.0.0.1:" + id},
		Rand: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func find(ms []Member, id string) (Member, bool) {
	for _, m := range ms {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

func TestNewDefaultsAndSelfRow(t *testing.T) {
	r := newTestReg(t, "a", 1)
	self := r.Self()
	if self.Incarnation != 1 || self.State != StateAlive {
		t.Fatalf("self row %+v", self)
	}
	if _, err := New(Config{Self: Member{Addr: "x"}}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := New(Config{Self: Member{ID: "x"}}); err == nil {
		t.Fatal("empty Addr accepted")
	}
}

func TestMergeAddsAndOrdersByIncarnation(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Merge([]Member{{ID: "b", Addr: "addr-b", Incarnation: 2, Heartbeat: 5}})
	b, ok := find(r.Members(), "b")
	if !ok || b.Incarnation != 2 || b.Heartbeat != 5 {
		t.Fatalf("merged b: %+v ok=%v", b, ok)
	}
	// A lower incarnation never regresses the row.
	r.Merge([]Member{{ID: "b", Addr: "old", Incarnation: 1, Heartbeat: 99}})
	if b, _ = find(r.Members(), "b"); b.Heartbeat != 5 || b.Addr != "addr-b" {
		t.Fatalf("stale incarnation applied: %+v", b)
	}
	// A higher incarnation supersedes everything.
	r.Merge([]Member{{ID: "b", Addr: "new", Incarnation: 3, Heartbeat: 1}})
	if b, _ = find(r.Members(), "b"); b.Incarnation != 3 || b.Addr != "new" || b.Heartbeat != 1 {
		t.Fatalf("higher incarnation not adopted: %+v", b)
	}
}

func TestSuspectThenEvictAfterConfiguredRounds(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, State: StateAlive}})
	// Default SuspectAfter=3: two quiet rounds keep it alive...
	r.Tick()
	r.Tick()
	if b, _ := find(r.Members(), "b"); b.State != StateAlive {
		t.Fatalf("suspected early: %+v", b)
	}
	// ...the third round suspects it.
	if sum := r.Tick(); sum.Suspected != 1 {
		t.Fatalf("round 3 summary: %+v", sum)
	}
	if b, _ := find(r.Members(), "b"); b.State != StateSuspect {
		t.Fatalf("not suspect: %+v", b)
	}
	// EvictAfter=3 more stalled rounds mark it dead.
	r.Tick()
	r.Tick()
	if sum := r.Tick(); sum.Evicted != 1 {
		t.Fatalf("eviction summary: %+v", sum)
	}
	if b, _ := find(r.Members(), "b"); b.State != StateDead {
		t.Fatalf("not dead: %+v", b)
	}
	if _, ok := find(r.Live(), "b"); ok {
		t.Fatal("dead member still in live view")
	}
}

func TestHeartbeatProgressClearsSuspicion(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, Heartbeat: 1}})
	r.Tick()
	r.Tick()
	r.Tick() // suspect now
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, Heartbeat: 2, State: StateAlive}})
	if b, _ := find(r.Members(), "b"); b.State != StateAlive {
		t.Fatalf("progress did not clear suspicion: %+v", b)
	}
	// The failure-detector clock restarted: two more quiet rounds stay
	// alive.
	r.Tick()
	r.Tick()
	if b, _ := find(r.Members(), "b"); b.State != StateAlive {
		t.Fatalf("clock not reset: %+v", b)
	}
}

func TestSelfRefutationOutbidsSuspicion(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Merge([]Member{{ID: "a", Addr: "x", Incarnation: 1, State: StateSuspect}})
	if self := r.Self(); self.Incarnation != 2 || self.State != StateAlive {
		t.Fatalf("no refutation: %+v", self)
	}
	// A dead claim at the bumped incarnation is outbid again.
	r.Merge([]Member{{ID: "a", Addr: "x", Incarnation: 2, State: StateDead}})
	if self := r.Self(); self.Incarnation != 3 || self.State != StateAlive {
		t.Fatalf("no second refutation: %+v", self)
	}
}

func TestLeaveIsFinal(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Leave()
	if self := r.Self(); self.State != StateLeft {
		t.Fatalf("not left: %+v", self)
	}
	hb := r.Self().Heartbeat
	r.Tick()
	if r.Self().Heartbeat != hb {
		t.Fatal("left member still heartbeating")
	}
	// Even a dead claim above our incarnation is not refuted.
	r.Merge([]Member{{ID: "a", Addr: "x", Incarnation: 9, State: StateDead}})
	if self := r.Self(); self.State != StateLeft {
		t.Fatalf("left overridden: %+v", self)
	}
}

func TestLeftOutranksDeadAtSameIncarnation(t *testing.T) {
	r := newTestReg(t, "a", 1)
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, State: StateLeft}})
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, State: StateDead}})
	if b, _ := find(r.Members(), "b"); b.State != StateLeft {
		t.Fatalf("clean goodbye rewritten as crash: %+v", b)
	}
}

func TestTombstonesExpire(t *testing.T) {
	r, err := New(Config{
		Self:           Member{ID: "a", Addr: "x"},
		TombstoneAfter: 2,
		Rand:           rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Merge([]Member{{ID: "b", Addr: "x", Incarnation: 1, State: StateLeft}})
	r.Tick()
	if _, ok := find(r.Members(), "b"); !ok {
		t.Fatal("tombstone expired early")
	}
	r.Tick()
	if _, ok := find(r.Members(), "b"); ok {
		t.Fatal("tombstone retained past TombstoneAfter")
	}
}

func TestTargetsDeterministicUnderSeed(t *testing.T) {
	mk := func() *Registry {
		r := newTestReg(t, "a", 42)
		r.Merge([]Member{
			{ID: "b", Addr: "x", Incarnation: 1},
			{ID: "c", Addr: "x", Incarnation: 1},
			{ID: "d", Addr: "x", Incarnation: 1},
			{ID: "e", Addr: "x", Incarnation: 1, State: StateDead},
		})
		return r
	}
	r1, r2 := mk(), mk()
	for round := 0; round < 5; round++ {
		t1, t2 := r1.Targets(), r2.Targets()
		if len(t1) != 2 {
			t.Fatalf("fanout: got %d targets", len(t1))
		}
		for i := range t1 {
			if t1[i].ID != t2[i].ID {
				t.Fatalf("round %d diverged: %v vs %v", round, t1, t2)
			}
			if t1[i].ID == "e" || t1[i].ID == "a" {
				t.Fatalf("target %q should be excluded", t1[i].ID)
			}
		}
	}
}

func TestRejoinAfterRestoreRefutesTombstone(t *testing.T) {
	// Peer holds a "left" tombstone at incarnation 3; the node rejoins
	// from a checkpoint carrying exactly incarnation 3. Gossip from the
	// peer triggers self-refutation to 4, which then wins at the peer.
	peer := newTestReg(t, "p", 1)
	peer.Merge([]Member{{ID: "a", Addr: "x", Incarnation: 3, State: StateLeft}})
	rejoined := newTestReg(t, "a", 2)
	rejoined.SetIncarnation(3)
	rejoined.Merge(peer.Members())
	if self := rejoined.Self(); self.Incarnation != 4 || self.State != StateAlive {
		t.Fatalf("rejoin refutation failed: %+v", self)
	}
	peer.Merge(rejoined.Members())
	if a, _ := find(peer.Live(), "a"); a.Incarnation != 4 || a.State != StateAlive {
		t.Fatalf("peer kept tombstone: %+v", a)
	}
}

func TestSimulateConvergenceDeterministicAndBounded(t *testing.T) {
	c1, err := SimulateConvergence(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SimulateConvergence(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("not deterministic: %+v vs %+v", c1, c2)
	}
	// Join spreads epidemically: well under the simulator's cap.
	if c1.JoinRounds <= 0 || c1.JoinRounds > 32 {
		t.Fatalf("join rounds %d out of expected range", c1.JoinRounds)
	}
	// Eviction needs at least SuspectAfter+EvictAfter=6 quiet rounds.
	if c1.EvictRounds < 6 || c1.EvictRounds > 64 {
		t.Fatalf("evict rounds %d out of expected range", c1.EvictRounds)
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	for _, s := range []State{StateAlive, StateSuspect, StateDead, StateLeft} {
		if ParseState(s.String()) != s {
			t.Fatalf("round trip %v", s)
		}
	}
	if ParseState("from-the-future") != StateDead {
		t.Fatal("unknown state should map to dead")
	}
}

// BenchmarkMembershipConvergence is the convergence row of the tracked
// benchmark trajectory: rounds-to-agreement for join and eviction in a
// 16-node mesh, reported as custom metrics alongside the wall cost of
// simulating it.
func BenchmarkMembershipConvergence(b *testing.B) {
	var last Convergence
	for i := 0; i < b.N; i++ {
		c, err := SimulateConvergence(16, 11)
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.ReportMetric(float64(last.JoinRounds), "join-rounds")
	b.ReportMetric(float64(last.EvictRounds), "evict-rounds")
}
