package membership

import (
	"fmt"
	"math/rand"
)

// Convergence reports how fast a simulated mesh of registries agrees
// on a membership change.
type Convergence struct {
	// Nodes is the initial federation size.
	Nodes int
	// JoinRounds is how many gossip rounds it took every registry to
	// list a freshly joined member as alive.
	JoinRounds int
	// EvictRounds is how many rounds after a crash it took every
	// surviving registry to stop listing the crashed member as live.
	EvictRounds int
}

// SimulateConvergence meshes n in-memory registries through direct
// Merge calls (no network), joins an (n+1)th member knowing only the
// first node, and then crashes one member — measuring the rounds until
// every view agrees on each change. It is the membership-convergence
// benchmark behind BENCH_qamarket.json and is fully deterministic for
// a given (n, seed).
func SimulateConvergence(n int, seed int64) (Convergence, error) {
	if n < 2 {
		return Convergence{}, fmt.Errorf("membership: SimulateConvergence needs >= 2 nodes, got %d", n)
	}
	regs := make([]*Registry, 0, n+1)
	newReg := func(i int) (*Registry, error) {
		return New(Config{
			Self: Member{ID: fmt.Sprintf("n%02d", i), Addr: fmt.Sprintf("10.0.0.%d:1", i)},
			Rand: rand.New(rand.NewSource(seed + int64(i))),
		})
	}
	for i := 0; i < n; i++ {
		r, err := newReg(i)
		if err != nil {
			return Convergence{}, err
		}
		regs = append(regs, r)
	}
	// Everyone starts knowing everyone: the steady-state federation.
	for _, a := range regs {
		for _, b := range regs {
			if a != b {
				a.Merge(b.Members())
			}
		}
	}
	dead := map[int]bool{}
	// round runs one synchronous gossip round: every live registry
	// ticks, then push-pulls its table with its fanout targets. A dead
	// index neither ticks nor answers, so knowledge about it freezes
	// and the failure detector takes over.
	round := func() {
		for i, r := range regs {
			if dead[i] {
				continue
			}
			r.Tick()
		}
		for i, r := range regs {
			if dead[i] {
				continue
			}
			for _, tgt := range r.Targets() {
				j := indexOf(regs, tgt.ID)
				if j < 0 || dead[j] {
					continue
				}
				regs[j].Merge(r.Members())
				r.Merge(regs[j].Members())
			}
		}
	}
	everyone := func(ok func(r *Registry) bool) bool {
		for i, r := range regs {
			if !dead[i] && !ok(r) {
				return false
			}
		}
		return true
	}
	maxRounds := 64 * (n + 1)

	// Join: the newcomer knows only node 0 and announces itself there.
	joiner, err := newReg(n)
	if err != nil {
		return Convergence{}, err
	}
	joiner.Merge(regs[0].Members())
	regs[0].Merge(joiner.Members())
	regs = append(regs, joiner)
	joinID := joiner.Self().ID
	joinRounds := -1
	for rd := 1; rd <= maxRounds; rd++ {
		round()
		if everyone(func(r *Registry) bool { return hasLive(r, joinID) }) {
			joinRounds = rd
			break
		}
	}
	if joinRounds < 0 {
		return Convergence{}, fmt.Errorf("membership: join did not converge in %d rounds", maxRounds)
	}

	// Crash: node 1 goes silent; survivors must suspect and evict it.
	crashed := regs[1].Self().ID
	dead[1] = true
	evictRounds := -1
	for rd := 1; rd <= maxRounds; rd++ {
		round()
		if everyone(func(r *Registry) bool { return !hasLive(r, crashed) }) {
			evictRounds = rd
			break
		}
	}
	if evictRounds < 0 {
		return Convergence{}, fmt.Errorf("membership: eviction did not converge in %d rounds", maxRounds)
	}
	return Convergence{Nodes: n, JoinRounds: joinRounds, EvictRounds: evictRounds}, nil
}

func indexOf(regs []*Registry, id string) int {
	for i, r := range regs {
		if r.Self().ID == id {
			return i
		}
	}
	return -1
}

func hasLive(r *Registry, id string) bool {
	for _, m := range r.Live() {
		if m.ID == id {
			return true
		}
	}
	return false
}
