// Package membership is the federation's gossip-based registry: every
// node carries a table of members (ID, address, incarnation, heartbeat,
// catalog digest, market epoch) and anti-entropy pushes it to a few
// random peers per gossip period. Crashed nodes are suspected after
// their heartbeat stops progressing and evicted a few rounds later;
// nodes that leave gracefully tombstone themselves so clients prune
// their supply before the failure detector would. The design follows
// SWIM-style epidemic membership (incarnation numbers refute stale
// suspicion) with a heartbeat failure detector, which keeps the whole
// protocol deterministic under an injected RNG: time is modeled as
// explicit Tick rounds, never wall-clock.
package membership

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// State is a member's lifecycle position.
type State uint8

// Member lifecycle states, in gossip-priority order: for equal
// incarnations a higher state wins a merge, so suspicion, death, and
// graceful departure each propagate monotonically until the subject
// refutes them with a higher incarnation.
const (
	// StateAlive is a member whose heartbeat is progressing.
	StateAlive State = iota
	// StateSuspect is a member whose heartbeat stalled for
	// SuspectAfter rounds; it may still refute.
	StateSuspect
	// StateDead is a suspect whose heartbeat stayed stalled for
	// EvictAfter further rounds: evicted from the live view.
	StateDead
	// StateLeft is a member that announced a graceful departure. It
	// outranks Dead so a clean goodbye is never rewritten as a crash.
	StateLeft
)

// String renders the state for wire payloads and operator tools.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ParseState inverts String; unknown strings map to StateDead so a
// newer peer's future state at least removes the member from the live
// view instead of faking liveness.
func ParseState(s string) State {
	switch s {
	case "alive":
		return StateAlive
	case "suspect":
		return StateSuspect
	case "left":
		return StateLeft
	default:
		return StateDead
	}
}

// Live reports whether the state keeps the member in the live view
// (alive or suspect — a suspect may still refute).
func (s State) Live() bool { return s == StateAlive || s == StateSuspect }

// Member is one row of the membership table.
type Member struct {
	// ID is the node's stable identity, constant across address
	// changes and restarts.
	ID string
	// Addr is the node's current TCP listen address.
	Addr string
	// Incarnation orders claims about this member: a member refutes
	// stale suspicion by bumping its own incarnation above the claim.
	Incarnation uint64
	// Heartbeat is the member's own round counter; progress observed
	// anywhere resets suspicion timers everywhere.
	Heartbeat uint64
	// State is the member's lifecycle position.
	State State
	// CatalogDigest summarizes which relations the node hosts, so
	// peers learn data placement along with liveness.
	CatalogDigest string
	// CatalogFilter is the hex-encoded relation-name Bloom filter
	// (catalog.RelationFilter) behind the digest: enough placement
	// detail for clients to test per-class feasibility without
	// shipping schemas. Empty on old nodes; consumers must then treat
	// the member as feasible for everything.
	CatalogFilter string
	// Driver names the storage executor behind the node's market
	// offers ("row", "vector", "mock:row", ...). Advertised so
	// operators can see a mixed row/vectorized federation in member
	// listings; empty on old nodes.
	Driver string
	// Epoch is the member's market age in pricer periods — how long
	// its QA-NT agent has been adjusting prices.
	Epoch uint64
}

// Config parameterizes a Registry.
type Config struct {
	// Self seeds the registry's own row. ID and Addr are required;
	// Incarnation defaults to 1 and State is forced to alive.
	Self Member
	// Fanout is how many random live peers each gossip round pushes
	// to (default 2).
	Fanout int
	// SuspectAfter is how many rounds without heartbeat progress move
	// an alive member to suspect (default 3).
	SuspectAfter int
	// EvictAfter is how many further stalled rounds move a suspect to
	// dead (default 3).
	EvictAfter int
	// TombstoneAfter is how many rounds a dead/left row is retained
	// before it is forgotten (default 24). Tombstones keep slower
	// peers' stale "alive" claims from resurrecting a departed member.
	TombstoneAfter int
	// Rand drives target selection. Defaults to a source seeded from
	// the member ID, so a fixed topology gossips deterministically.
	Rand *rand.Rand
}

// entry is a member row plus the local failure-detector bookkeeping.
type entry struct {
	m Member
	// stalled counts rounds since the member's heartbeat or
	// incarnation last progressed.
	stalled int
	// buried counts rounds the row has spent dead or left.
	buried int
}

// Registry is one node's membership table. All methods are safe for
// concurrent use.
type Registry struct {
	mu             sync.Mutex
	self           string
	fanout         int
	suspectAfter   int
	evictAfter     int
	tombstoneAfter int
	rng            *rand.Rand
	members        map[string]*entry
	left           bool
	version        uint64
	changed        chan struct{}
}

// TickSummary reports what one failure-detector round changed.
type TickSummary struct {
	// Suspected is how many members moved alive -> suspect.
	Suspected int
	// Evicted is how many members moved suspect -> dead.
	Evicted int
}

// New builds a registry containing only Self.
func New(cfg Config) (*Registry, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("membership: Config.Self.ID is empty")
	}
	if cfg.Self.Addr == "" {
		return nil, errors.New("membership: Config.Self.Addr is empty")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 3
	}
	if cfg.TombstoneAfter <= 0 {
		cfg.TombstoneAfter = 24
	}
	if cfg.Rand == nil {
		h := fnv.New64a()
		h.Write([]byte(cfg.Self.ID))
		cfg.Rand = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	self := cfg.Self
	if self.Incarnation == 0 {
		self.Incarnation = 1
	}
	self.State = StateAlive
	r := &Registry{
		self:           self.ID,
		fanout:         cfg.Fanout,
		suspectAfter:   cfg.SuspectAfter,
		evictAfter:     cfg.EvictAfter,
		tombstoneAfter: cfg.TombstoneAfter,
		rng:            cfg.Rand,
		members:        map[string]*entry{self.ID: {m: self}},
		changed:        make(chan struct{}, 1),
	}
	return r, nil
}

// bump records a visible table change. Callers hold r.mu.
func (r *Registry) bump() {
	r.version++
	select {
	case r.changed <- struct{}{}:
	default:
	}
}

// Version counts visible table changes; pollers compare it cheaply.
func (r *Registry) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Changed signals (coalesced) whenever the table changes.
func (r *Registry) Changed() <-chan struct{} { return r.changed }

// Self returns the registry's own row.
func (r *Registry) Self() Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[r.self].m
}

// SetEpoch advertises the local market's age in pricer periods.
func (r *Registry) SetEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.members[r.self]
	if e.m.Epoch != epoch {
		e.m.Epoch = epoch
	}
}

// SetIncarnation installs a restored incarnation (checkpoint rejoin).
// The rejoining node re-announces at exactly the persisted incarnation;
// if peers hold a left/dead tombstone at that incarnation, their gossip
// triggers the usual self-refutation bump, which then outranks it.
func (r *Registry) SetIncarnation(inc uint64) {
	if inc == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.members[r.self]
	if e.m.Incarnation != inc {
		e.m.Incarnation = inc
		r.bump()
	}
}

// Members snapshots the whole table (tombstones included), sorted by ID.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, e := range r.members {
		out = append(out, e.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Live snapshots the live view (alive + suspect), sorted by ID.
func (r *Registry) Live() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, e := range r.members {
		if e.m.State.Live() {
			out = append(out, e.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Targets picks up to Fanout random live peers (never self) to gossip
// with this round. Suspects are included so they get the chance to
// refute before eviction.
func (r *Registry) Targets() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	cands := make([]Member, 0, len(r.members))
	for id, e := range r.members {
		if id != r.self && e.m.State.Live() {
			cands = append(cands, e.m)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	r.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > r.fanout {
		cands = cands[:r.fanout]
	}
	return cands
}

// Tick advances one gossip round: the local heartbeat increments and
// every other member's failure-detector clock advances. Time exists
// only through Tick, so a seeded registry behaves identically across
// runs.
func (r *Registry) Tick() TickSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum TickSummary
	changed := false
	if !r.left {
		r.members[r.self].m.Heartbeat++
		changed = true
	}
	for id, e := range r.members {
		if id == r.self {
			continue
		}
		switch e.m.State {
		case StateAlive:
			e.stalled++
			if e.stalled >= r.suspectAfter {
				e.m.State = StateSuspect
				sum.Suspected++
				changed = true
			}
		case StateSuspect:
			e.stalled++
			if e.stalled >= r.suspectAfter+r.evictAfter {
				e.m.State = StateDead
				e.buried = 0
				sum.Evicted++
				changed = true
			}
		case StateDead, StateLeft:
			e.buried++
			if e.buried >= r.tombstoneAfter {
				delete(r.members, id)
				changed = true
			}
		}
	}
	if changed {
		r.bump()
	}
	return sum
}

// Merge folds a remote table into the local one and reports whether
// anything changed. Per member, a higher incarnation wins outright; at
// equal incarnations heartbeat progress refreshes the failure detector
// and the higher-priority state propagates. Claims about self that are
// not "alive" are refuted by bumping our incarnation above them —
// unless we have left, which is final.
func (r *Registry) Merge(remote []Member) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, rm := range remote {
		if rm.ID == "" {
			continue
		}
		if rm.ID == r.self {
			if r.mergeSelf(rm) {
				changed = true
			}
			continue
		}
		e, ok := r.members[rm.ID]
		if !ok {
			cp := rm
			r.members[rm.ID] = &entry{m: cp}
			changed = true
			continue
		}
		if mergeEntry(e, rm) {
			changed = true
		}
	}
	if changed {
		r.bump()
	}
	return changed
}

// mergeSelf handles remote claims about the local member. Callers hold
// r.mu.
func (r *Registry) mergeSelf(rm Member) bool {
	e := r.members[r.self]
	if r.left {
		// Departure is final; nothing to refute.
		return false
	}
	switch {
	case rm.Incarnation >= e.m.Incarnation && rm.State != StateAlive:
		// Someone thinks we are suspect/dead/left at our incarnation
		// (or later): refute by outbidding the claim.
		e.m.Incarnation = rm.Incarnation + 1
		e.m.State = StateAlive
		return true
	case rm.Incarnation > e.m.Incarnation:
		// An alive claim newer than our own view of ourselves (a
		// pre-crash ghost): adopt the incarnation so our future claims
		// stay the freshest.
		e.m.Incarnation = rm.Incarnation
		return true
	}
	return false
}

// mergeEntry folds one remote row into a local entry.
func mergeEntry(e *entry, rm Member) bool {
	switch {
	case rm.Incarnation > e.m.Incarnation:
		// A higher incarnation supersedes everything we knew.
		e.m = rm
		e.stalled, e.buried = 0, 0
		return true
	case rm.Incarnation < e.m.Incarnation:
		return false
	}
	changed := false
	if rm.Heartbeat > e.m.Heartbeat {
		e.m.Heartbeat = rm.Heartbeat
		e.m.Addr = rm.Addr
		e.m.CatalogDigest = rm.CatalogDigest
		e.m.CatalogFilter = rm.CatalogFilter
		e.m.Driver = rm.Driver
		if rm.Epoch > e.m.Epoch {
			e.m.Epoch = rm.Epoch
		}
		e.stalled = 0
		if e.m.State == StateSuspect && rm.State == StateAlive {
			// The reporter saw a newer heartbeat and believes the
			// member alive: our suspicion was stale.
			e.m.State = StateAlive
		}
		changed = true
	}
	if rm.State > e.m.State {
		e.m.State = rm.State
		e.buried = 0
		changed = true
	}
	return changed
}

// Leave tombstones the local member. Final: later merges never revive
// it, and Tick stops advancing its heartbeat.
func (r *Registry) Leave() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.left {
		return
	}
	r.left = true
	r.members[r.self].m.State = StateLeft
	r.bump()
}

// Left reports whether Leave was called.
func (r *Registry) Left() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.left
}
