package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins edge-robust bucketing at every exact
// bucket boundary: a value exactly at histMinMs·g^i belongs to bucket
// i (buckets are [low, high) by construction). The naive
// log(ms/min)/log(g) bucketing rounds just below the integer at 21 of
// the 88 edges and truncates into bucket i−1; this table fails on it.
func TestHistogramBucketEdges(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		edge := histMinMs * math.Pow(histGrowth, float64(i))
		if got := histBucketOf(edge); got != i {
			t.Errorf("exact edge %d (%.12g ms) -> bucket %d, want %d", i, edge, got, i)
		}
		// Nudging one ULP below the edge must stay in the bucket below
		// (or 0 for the first edge, whose lower neighbors clamp).
		below := math.Nextafter(edge, 0)
		wantBelow := i - 1
		if wantBelow < 0 {
			wantBelow = 0
		}
		if got := histBucketOf(below); got != wantBelow {
			t.Errorf("just below edge %d (%.12g ms) -> bucket %d, want %d", i, below, got, wantBelow)
		}
	}
	// The overflow bucket starts at the 88th edge.
	top := histMinMs * math.Pow(histGrowth, float64(histBuckets))
	if got := histBucketOf(top); got != histBuckets {
		t.Errorf("overflow edge (%.12g ms) -> bucket %d, want %d", top, got, histBuckets)
	}
	if got := histBucketOf(math.Nextafter(top, 0)); got != histBuckets-1 {
		t.Errorf("just below overflow -> bucket %d, want %d", got, histBuckets-1)
	}
	if got := histBucketOf(0); got != 0 {
		t.Errorf("zero -> bucket %d, want 0", got)
	}
	if got := histBucketOf(math.Inf(1)); got != histBuckets {
		t.Errorf("+Inf -> bucket %d, want overflow", got)
	}
}

func TestHistogramBucketsSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(1e9) // overflow bucket
	b := h.Buckets()
	if len(b.UpperMs) != histBuckets+1 || len(b.CumCount) != histBuckets+1 {
		t.Fatalf("bucket layout %d/%d, want %d", len(b.UpperMs), len(b.CumCount), histBuckets+1)
	}
	if b.Count != 3 || b.SumMs != 1e9+1 {
		t.Fatalf("count=%d sum=%v", b.Count, b.SumMs)
	}
	if !math.IsInf(b.UpperMs[histBuckets], 1) {
		t.Fatalf("last upper bound = %v, want +Inf", b.UpperMs[histBuckets])
	}
	if b.CumCount[histBuckets] != 3 {
		t.Fatalf("final cumulative count = %d, want 3", b.CumCount[histBuckets])
	}
	// Cumulative counts are monotone and the 0.5 ms pair lands at its
	// bucket's edge and stays counted from there on.
	i05 := histBucketOf(0.5)
	if b.CumCount[i05] != 2 {
		t.Fatalf("cum count at 0.5ms bucket = %d, want 2", b.CumCount[i05])
	}
	for i := 1; i < len(b.CumCount); i++ {
		if b.CumCount[i] < b.CumCount[i-1] {
			t.Fatalf("cumulative counts not monotone at %d", i)
		}
		if b.UpperMs[i] <= b.UpperMs[i-1] {
			t.Fatalf("upper bounds not increasing at %d", i)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if s := h.Summary(); s != (HistSummary{}) {
		t.Fatalf("empty summary = %+v, want zero", s)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(3.7)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Fatalf("Quantile(%v) = %v, want exactly 3.7 (min/max clamp)", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 1 || s.MeanMs != 3.7 || s.MinMs != 3.7 || s.MaxMs != 3.7 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990. The bucket
	// growth factor bounds relative error at 25%.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.25 {
			t.Errorf("Quantile(%v) = %v, want %v ±25%%", tc.q, got, tc.want)
		}
	}
	s := h.Summary()
	if s.MinMs != 1 || s.MaxMs != 1000 || s.Count != 1000 {
		t.Fatalf("summary bounds = %+v", s)
	}
	if math.Abs(s.MeanMs-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5 (exact sum)", s.MeanMs)
	}
	// Quantiles are monotone and inside [min, max].
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev || v < s.MinMs || v > s.MaxMs {
			t.Fatalf("Quantile(%v) = %v not monotone/clamped (prev %v)", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)          // below first bucket edge
	h.Observe(-5)         // clamps to 0
	h.Observe(math.NaN()) // dropped
	h.Observe(1e9)        // overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3 (NaN dropped)", got)
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("p100 = %v, want max clamp 1e9", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want min clamp 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
		both.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
		both.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), both.Count())
	}
	if got, want := a.Summary(), both.Summary(); got != want {
		t.Fatalf("merged summary %+v != direct %+v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*1000+i) / 100)
				if i%100 == 0 {
					h.Quantile(0.5)
					h.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHistogramBucketMapping(t *testing.T) {
	// Every bucket's representative value maps back into that bucket (or
	// its immediate neighbor for float rounding at edges) — the property
	// that keeps quantile error within one bucket width.
	for i := 0; i < histBuckets; i++ {
		rep := bucketRep(i)
		got := histBucketOf(rep)
		if got < i-1 || got > i+1 {
			t.Fatalf("bucketRep(%d) = %v maps to bucket %d", i, rep, got)
		}
	}
	if histBucketOf(1e12) != histBuckets {
		t.Fatal("huge value must land in overflow bucket")
	}
}
