package metrics

import (
	"strings"
	"testing"
)

func TestPromWriterCountersAndGauges(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("qa_retries_total", nil, 3)
	p.Counter("qa_retries_total", Labels{"node": "n-1"}, 4)
	p.Gauge("qa_members_live", nil, 2.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		"# TYPE qa_retries_total counter",
		"qa_retries_total 3",
		`qa_retries_total{node="n-1"} 4`,
		"# TYPE qa_members_live gauge",
		"qa_members_live 2.5",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// One TYPE line per family, even with several samples.
	if strings.Count(out, "# TYPE qa_retries_total") != 1 {
		t.Errorf("duplicate TYPE header:\n%s", out)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(1e9)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("qa_rpc_ms", Labels{"op": "negotiate"}, h.Buckets())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE qa_rpc_ms histogram") {
		t.Fatalf("missing TYPE:\n%s", out)
	}
	if !strings.Contains(out, `qa_rpc_ms_bucket{le="+Inf",op="negotiate"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `qa_rpc_ms_count{op="negotiate"} 3`) {
		t.Fatalf("missing count:\n%s", out)
	}
	if !strings.Contains(out, "qa_rpc_ms_sum{op=\"negotiate\"}") {
		t.Fatalf("missing sum:\n%s", out)
	}
	// 88 finite buckets + overflow.
	if got := strings.Count(out, "qa_rpc_ms_bucket{"); got != histBuckets+1 {
		t.Fatalf("bucket sample count = %d, want %d", got, histBuckets+1)
	}
	// Deterministic: the same histogram renders identically.
	var b2 strings.Builder
	p2 := NewPromWriter(&b2)
	p2.Histogram("qa_rpc_ms", Labels{"op": "negotiate"}, h.Buckets())
	if b2.String() != out {
		t.Fatal("histogram rendering not deterministic")
	}
}

func TestPromLabelsSortedAndEscaped(t *testing.T) {
	l := Labels{"zeta": "z", "alpha": `quote " and \slash`, "mid": "line\nbreak"}
	got := l.render()
	want := `{alpha="quote \" and \\slash",mid="line\nbreak",zeta="z"}`
	if got != want {
		t.Fatalf("render = %s, want %s", got, want)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"drains_total":     "drains_total",
		"scan(t1,t2)|sort": "scan_t1_t2__sort",
		"9lives":           "_lives",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("sanitize %q = %q, want %q", in, got, want)
		}
	}
}
