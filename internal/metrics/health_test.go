package metrics

import (
	"sync"
	"testing"
)

func TestHealthCountersAndGauges(t *testing.T) {
	h := NewHealth()
	if got := h.Counter(RetriesTotal); got != 0 {
		t.Errorf("fresh counter = %d", got)
	}
	h.Inc(RetriesTotal)
	h.Add(RetriesTotal, 2)
	if got := h.Counter(RetriesTotal); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	h.SetGauge(CheckpointAgeMs, 1234.5)
	snap := h.Snapshot()
	if snap[RetriesTotal] != 3 || snap[CheckpointAgeMs] != 1234.5 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy: mutating it must not touch the registry.
	snap[RetriesTotal] = 99
	if got := h.Counter(RetriesTotal); got != 3 {
		t.Errorf("snapshot mutation leaked: counter = %d", got)
	}
}

// TestHealthKindCollisionPanics pins the fix for the silent Snapshot
// name collision: counters and gauges used to merge into one map, so a
// counter and gauge sharing a name overwrote each other without any
// error. Now the second registration of the other kind panics.
func TestHealthKindCollisionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on counter/gauge name collision", name)
			}
		}()
		fn()
	}
	h := NewHealth()
	h.Inc("requests_total")
	mustPanic("gauge over counter", func() { h.SetGauge("requests_total", 1) })

	h2 := NewHealth()
	h2.SetGauge("queue_depth", 4)
	mustPanic("counter over gauge", func() { h2.Inc("queue_depth") })
	mustPanic("add over gauge", func() { h2.Add("queue_depth", 2) })

	// Same-kind re-registration stays legal, and both kinds survive in
	// the merged snapshot untouched.
	h3 := NewHealth()
	h3.Inc("a_total")
	h3.Inc("a_total")
	h3.SetGauge("b", 7)
	h3.SetGauge("b", 8)
	snap := h3.Snapshot()
	if snap["a_total"] != 2 || snap["b"] != 8 {
		t.Errorf("snapshot = %v", snap)
	}
	if c := h3.Counters(); len(c) != 1 || c["a_total"] != 2 {
		t.Errorf("Counters() = %v", c)
	}
	if g := h3.Gauges(); len(g) != 1 || g["b"] != 8 {
		t.Errorf("Gauges() = %v", g)
	}
	if h3.Gauge("b") != 8 {
		t.Errorf("Gauge(b) = %v", h3.Gauge("b"))
	}
}

func TestHealthConcurrentAccess(t *testing.T) {
	h := NewHealth()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Inc(BreakerOpenTotal)
				h.SetGauge(CheckpointAgeMs, float64(j))
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Counter(BreakerOpenTotal); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}
