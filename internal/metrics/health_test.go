package metrics

import (
	"sync"
	"testing"
)

func TestHealthCountersAndGauges(t *testing.T) {
	h := NewHealth()
	if got := h.Counter(RetriesTotal); got != 0 {
		t.Errorf("fresh counter = %d", got)
	}
	h.Inc(RetriesTotal)
	h.Add(RetriesTotal, 2)
	if got := h.Counter(RetriesTotal); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	h.SetGauge(CheckpointAgeMs, 1234.5)
	snap := h.Snapshot()
	if snap[RetriesTotal] != 3 || snap[CheckpointAgeMs] != 1234.5 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot is a copy: mutating it must not touch the registry.
	snap[RetriesTotal] = 99
	if got := h.Counter(RetriesTotal); got != 3 {
		t.Errorf("snapshot mutation leaked: counter = %d", got)
	}
}

func TestHealthConcurrentAccess(t *testing.T) {
	h := NewHealth()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Inc(BreakerOpenTotal)
				h.SetGauge(CheckpointAgeMs, float64(j))
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Counter(BreakerOpenTotal); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}
