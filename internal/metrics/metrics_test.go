package metrics

import (
	"math"
	"testing"
)

func TestSampleResponse(t *testing.T) {
	s := Sample{ArrivalMs: 100, FinishMs: 700}
	if s.ResponseMs() != 600 {
		t.Errorf("ResponseMs = %d, want 600", s.ResponseMs())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var c Collector
	s := c.Summarize()
	if s.Completed != 0 || s.MeanRespMs != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeStats(t *testing.T) {
	var c Collector
	for i, resp := range []int64{100, 200, 300, 400} {
		c.Add(Sample{
			ArrivalMs:  0,
			FinishMs:   resp,
			StartMs:    0,
			AssignMs:   int64(i),
			Resubmits:  i % 2,
			ExecutedMs: 50,
		})
	}
	c.Drop()
	s := c.Summarize()
	if s.Completed != 4 || s.Dropped != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MeanRespMs != 250 {
		t.Errorf("mean = %g, want 250", s.MeanRespMs)
	}
	if s.MedianMs != 250 {
		t.Errorf("median = %g, want 250", s.MedianMs)
	}
	if s.MaxMs != 400 {
		t.Errorf("max = %d, want 400", s.MaxMs)
	}
	if s.MeanAssign != 1.5 {
		t.Errorf("mean assign = %g, want 1.5", s.MeanAssign)
	}
	if s.MeanResub != 0.5 {
		t.Errorf("mean resubmits = %g, want 0.5", s.MeanResub)
	}
	if s.TotalExecMs != 200 {
		t.Errorf("total exec = %d, want 200", s.TotalExecMs)
	}
	if s.P95Ms < 300 || s.P95Ms > 400 {
		t.Errorf("p95 = %g outside [300,400]", s.P95Ms)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	if p := percentile([]int64{10}, 0.5); p != 10 {
		t.Errorf("single-element percentile = %g", p)
	}
	if p := percentile([]int64{0, 100}, 0.5); p != 50 {
		t.Errorf("interpolated median = %g, want 50", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g", p)
	}
}

func TestExecutedPerBucket(t *testing.T) {
	var c Collector
	c.Add(Sample{Class: 0, FinishMs: 100})
	c.Add(Sample{Class: 0, FinishMs: 499})
	c.Add(Sample{Class: 1, FinishMs: 450})
	c.Add(Sample{Class: 0, FinishMs: 900})
	all := c.ExecutedPerBucket(500, 1000, -1)
	if all[0] != 3 || all[1] != 1 {
		t.Errorf("all-class buckets = %v", all)
	}
	q0 := c.ExecutedPerBucket(500, 1000, 0)
	if q0[0] != 2 || q0[1] != 1 {
		t.Errorf("class-0 buckets = %v", q0)
	}
	// Finishes beyond the horizon fall off the series.
	c.Add(Sample{Class: 0, FinishMs: 5000})
	if got := c.ExecutedPerBucket(500, 1000, 0); len(got) != 2 {
		t.Errorf("horizon not respected: %v", got)
	}
}

func TestNormalize(t *testing.T) {
	means := map[string]float64{"qa-nt": 200, "greedy": 260, "random": 600}
	norm, err := Normalize(means, "qa-nt")
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if norm["qa-nt"] != 1 {
		t.Errorf("reference not 1: %g", norm["qa-nt"])
	}
	if math.Abs(norm["greedy"]-1.3) > 1e-9 {
		t.Errorf("greedy = %g, want 1.3", norm["greedy"])
	}
	if _, err := Normalize(means, "missing"); err == nil {
		t.Error("missing reference accepted")
	}
	if _, err := Normalize(map[string]float64{"x": 0}, "x"); err == nil {
		t.Error("zero reference accepted")
	}
}
