package metrics

import (
	"fmt"
	"math"
	"sync"
)

// Fixed log-scale bucket layout shared by every Histogram, so any two
// histograms merge bucket-by-bucket without renormalization. Bucket i
// covers [histMinMs·g^i, histMinMs·g^(i+1)) milliseconds; the final
// slot is the overflow bucket. With g = 1.25 the relative quantile
// error is bounded by one bucket width (≤ 25%, ~12% at the geometric
// midpoint), and 88 buckets span 10 µs to ~56 minutes.
const (
	histMinMs   = 0.01
	histGrowth  = 1.25
	histBuckets = 88
)

// Histogram is a fixed-bucket log-scale latency histogram: cheap to
// record into, mergeable, and race-clean. Quantiles (p50/p95/p99) are
// derived from the bucket counts, clamped to the exact observed
// min/max so degenerate distributions report sharp values. The zero
// value is not usable; call NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets + 1]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one measurement in milliseconds. NaN is dropped;
// negative values clamp to zero.
func (h *Histogram) Observe(ms float64) {
	if math.IsNaN(ms) {
		return
	}
	if ms < 0 {
		ms = 0
	}
	i := histBucketOf(ms)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += ms
	if ms < h.min {
		h.min = ms
	}
	if ms > h.max {
		h.max = ms
	}
	h.mu.Unlock()
}

// histBounds[i] is the inclusive lower edge of bucket i, precomputed so
// bucketing and exposition agree on the exact float64 edge values.
// histBounds[histBuckets] is the lower edge of the overflow bucket.
var histBounds = func() [histBuckets + 1]float64 {
	var b [histBuckets + 1]float64
	for i := range b {
		b[i] = histMinMs * math.Pow(histGrowth, float64(i))
	}
	return b
}()

// histBucketOf maps a value to its bucket index. The log gives a fast
// estimate, but at an exact edge histMinMs·g^i the float division can
// land just below i and truncate into bucket i−1 (and symmetrically
// just above), so the estimate is corrected against the precomputed
// edges; each loop runs at most one step.
func histBucketOf(ms float64) int {
	if ms < histMinMs {
		return 0
	}
	i := int(math.Log(ms/histMinMs) / math.Log(histGrowth))
	if i < 0 {
		i = 0
	}
	if i > histBuckets {
		i = histBuckets
	}
	for i < histBuckets && ms >= histBounds[i+1] {
		i++
	}
	for i > 0 && ms < histBounds[i] {
		i--
	}
	return i
}

// Merge folds another histogram's observations into h. The other
// histogram is snapshotted under its own lock first, so concurrent
// recording into either side stays safe.
func (h *Histogram) Merge(o *Histogram) {
	o.mu.Lock()
	counts := o.counts
	count, sum, omin, omax := o.count, o.sum, o.min, o.max
	o.mu.Unlock()
	h.mu.Lock()
	for i := range counts {
		h.counts[i] += counts[i]
	}
	h.count += count
	h.sum += sum
	if omin < h.min {
		h.min = omin
	}
	if omax > h.max {
		h.max = omax
	}
	h.mu.Unlock()
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile (q in [0,1]) in milliseconds: the
// geometric midpoint of the bucket holding the q·count-th observation,
// clamped to the observed [min, max]. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	// The extremes are tracked exactly; only interior quantiles pay the
	// bucket resolution.
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.clampLocked(bucketRep(i))
		}
	}
	return h.max // unreachable: cum == count by the loop's end
}

// bucketRep is the representative value reported for a bucket: its
// geometric midpoint. The overflow bucket has no upper bound, so it
// reports +Inf and lets the max clamp pull it to the observed maximum.
func bucketRep(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return histMinMs * math.Pow(histGrowth, float64(i)+0.5)
}

func (h *Histogram) clampLocked(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// HistSummary is a rendered snapshot of a histogram: the quantities
// qactl and qaload report.
type HistSummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary snapshots the histogram into its reporting quantities. An
// empty histogram summarizes to all zeros.
func (h *Histogram) Summary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count:  h.count,
		MeanMs: h.sum / float64(h.count),
		P50Ms:  h.quantileLocked(0.50),
		P95Ms:  h.quantileLocked(0.95),
		P99Ms:  h.quantileLocked(0.99),
		MinMs:  h.min,
		MaxMs:  h.max,
	}
}

// BucketSnapshot is the raw bucket view of a histogram, for
// Prometheus-style exposition: cumulative counts per upper bound (the
// classic `le` layout), plus the exact sum and count.
type BucketSnapshot struct {
	// UpperMs[i] is bucket i's exclusive upper edge in milliseconds;
	// the final entry is +Inf (the overflow bucket).
	UpperMs []float64
	// CumCount[i] counts observations at or below UpperMs[i].
	CumCount []uint64
	Count    uint64
	SumMs    float64
}

// Buckets snapshots the histogram's cumulative bucket counts. Empty
// buckets are included — the fixed layout is the contract that makes
// scrapes from different nodes comparable.
func (h *Histogram) Buckets() BucketSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := BucketSnapshot{
		UpperMs:  make([]float64, histBuckets+1),
		CumCount: make([]uint64, histBuckets+1),
		Count:    h.count,
		SumMs:    h.sum,
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		s.CumCount[i] = cum
		if i < histBuckets {
			s.UpperMs[i] = histBounds[i+1]
		} else {
			s.UpperMs[i] = math.Inf(1)
		}
	}
	return s
}

// String renders the summary on one line.
func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		s.Count, s.MeanMs, s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
}
