// Package metrics collects the measurements reported in Section 5: per-
// query response times, per-period executed-query counts, and the
// response-time normalization the paper applies (dividing each
// algorithm's average by QA-NT's).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample records one completed query.
type Sample struct {
	Class      int
	Origin     int
	Node       int   // executing node
	ArrivalMs  int64 // when the query entered the system
	StartMs    int64 // when execution began
	FinishMs   int64 // when execution completed
	AssignMs   int64 // time spent choosing the executing node
	Resubmits  int   // times the query was pushed to a later period
	ExecutedMs int64 // pure execution time at the node
}

// ResponseMs is the end-to-end response time the experiments report.
func (s Sample) ResponseMs() int64 { return s.FinishMs - s.ArrivalMs }

// Collector accumulates samples for one experiment run.
type Collector struct {
	samples []Sample
	dropped int
}

// Add records a completed query.
func (c *Collector) Add(s Sample) { c.samples = append(c.samples, s) }

// Drop records a query that never completed within the experiment
// horizon (still queued at the end).
func (c *Collector) Drop() { c.dropped++ }

// Samples returns the recorded samples (not a copy; callers must not
// mutate).
func (c *Collector) Samples() []Sample { return c.samples }

// Completed returns how many queries finished.
func (c *Collector) Completed() int { return len(c.samples) }

// Dropped returns how many queries never finished.
func (c *Collector) Dropped() int { return c.dropped }

// Summary condenses a run into the figures' reporting quantities.
type Summary struct {
	Completed   int
	Dropped     int
	MeanRespMs  float64
	MedianMs    float64
	P95Ms       float64
	MaxMs       int64
	MeanAssign  float64
	MeanResub   float64
	TotalExecMs int64
}

// Summarize computes the summary statistics of the run.
func (c *Collector) Summarize() Summary {
	s := Summary{Completed: len(c.samples), Dropped: c.dropped}
	if len(c.samples) == 0 {
		return s
	}
	resp := make([]int64, len(c.samples))
	var sum, asum int64
	var rsum int
	for i, smp := range c.samples {
		r := smp.ResponseMs()
		resp[i] = r
		sum += r
		asum += smp.AssignMs
		rsum += smp.Resubmits
		s.TotalExecMs += smp.ExecutedMs
		if r > s.MaxMs {
			s.MaxMs = r
		}
	}
	sort.Slice(resp, func(i, j int) bool { return resp[i] < resp[j] })
	n := float64(len(resp))
	s.MeanRespMs = float64(sum) / n
	s.MedianMs = percentile(resp, 0.5)
	s.P95Ms = percentile(resp, 0.95)
	s.MeanAssign = float64(asum) / n
	s.MeanResub = float64(rsum) / n
	return s
}

// ExecutedPerBucket counts queries whose execution *finished* inside
// each half-second bucket — the "queries executed" series of Figure 5c.
func (c *Collector) ExecutedPerBucket(bucketMs, horizonMs int64, class int) []int {
	n := int((horizonMs + bucketMs - 1) / bucketMs)
	out := make([]int, n)
	for _, s := range c.samples {
		if class >= 0 && s.Class != class {
			continue
		}
		b := int(s.FinishMs / bucketMs)
		if b >= 0 && b < n {
			out[b]++
		}
	}
	return out
}

// Normalize divides each algorithm's mean response time by the
// reference algorithm's (the paper normalizes against QA-NT). Values
// above 1 mean "slower than the reference".
func Normalize(means map[string]float64, reference string) (map[string]float64, error) {
	ref, ok := means[reference]
	if !ok {
		return nil, fmt.Errorf("metrics: reference %q missing", reference)
	}
	if ref <= 0 || math.IsNaN(ref) {
		return nil, fmt.Errorf("metrics: reference mean %g not positive", ref)
	}
	out := make(map[string]float64, len(means))
	for k, v := range means {
		out[k] = v / ref
	}
	return out, nil
}

func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}
