package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus plain-text exposition (text format 0.0.4), rendered with
// the stdlib only. PromWriter keeps the output deterministic: metric
// families are emitted in the order first written, labels and repeated
// series are sorted, and every family carries exactly one # TYPE line.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter wraps an io.Writer for exposition rendering.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the # TYPE line once per metric family.
func (p *PromWriter) header(name, typ string) {
	if !p.typed[name] {
		p.typed[name] = true
		p.printf("# TYPE %s %s\n", name, typ)
	}
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name string, labels Labels, v float64) {
	p.header(name, "counter")
	p.printf("%s%s %s\n", name, labels.render(), formatValue(v))
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name string, labels Labels, v float64) {
	p.header(name, "gauge")
	p.printf("%s%s %s\n", name, labels.render(), formatValue(v))
}

// Histogram emits one histogram series: cumulative buckets with `le`
// labels, plus the _sum and _count samples, all carrying the caller's
// labels. Empty histograms still render their full bucket layout, so a
// scrape's schema is stable from the first period.
func (p *PromWriter) Histogram(name string, labels Labels, b BucketSnapshot) {
	p.header(name, "histogram")
	for i := range b.UpperMs {
		le := formatValue(b.UpperMs[i])
		bucketLabels := labels.with("le", le)
		p.printf("%s_bucket%s %d\n", name, bucketLabels.render(), b.CumCount[i])
	}
	p.printf("%s_sum%s %s\n", name, labels.render(), formatValue(b.SumMs))
	p.printf("%s_count%s %d\n", name, labels.render(), b.Count)
}

// Labels is one sample's label set. Rendering sorts by key so output
// is deterministic regardless of construction order.
type Labels map[string]string

// with copies the set and adds one pair (the receiver is unchanged).
func (l Labels) with(k, v string) Labels {
	out := make(Labels, len(l)+1)
	for key, val := range l {
		out[key] = val
	}
	out[k] = v
	return out
}

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes, and newlines — the three
		// escapes the exposition format requires.
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integers without a fraction,
// +Inf for the overflow bucket edge, shortest round-trip otherwise.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// SanitizeMetricName maps an arbitrary metric name onto the exposition
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with '_'.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
