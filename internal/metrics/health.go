package metrics

import (
	"fmt"
	"sync"
)

// Canonical health metric names shared by the cluster client and
// server. Counters end in _total; everything else is a gauge.
const (
	// BreakerOpenTotal counts closed/half-open -> open transitions.
	BreakerOpenTotal = "breaker_open_total"
	// BreakerHalfOpenTotal counts open -> half-open (probe) transitions.
	BreakerHalfOpenTotal = "breaker_half_open_total"
	// BreakerCloseTotal counts half-open -> closed (recovery) transitions.
	BreakerCloseTotal = "breaker_close_total"
	// RetriesTotal counts client resubmission rounds (refusals,
	// unreachable federations, and lost execute races).
	RetriesTotal = "retries_total"
	// BackoffMsTotal accumulates milliseconds the client spent in
	// retry backoff sleeps.
	BackoffMsTotal = "backoff_ms_total"
	// DrainsTotal counts graceful drains started on a node.
	DrainsTotal = "drains_total"
	// DrainTimeoutsTotal counts drains that hit their deadline with
	// work still in flight.
	DrainTimeoutsTotal = "drain_timeouts_total"
	// DrainRejectsTotal counts requests refused with a draining reply.
	DrainRejectsTotal = "drain_rejects_total"
	// CheckpointsTotal counts market-state checkpoints written.
	CheckpointsTotal = "checkpoints_total"
	// CheckpointAgeMs is the time since the node last checkpointed.
	CheckpointAgeMs = "checkpoint_age_ms"
	// GossipRoundsTotal counts membership gossip rounds run.
	GossipRoundsTotal = "gossip_rounds_total"
	// GossipFailuresTotal counts gossip exchanges that failed at the
	// transport (peer unreachable or timed out).
	GossipFailuresTotal = "gossip_failures_total"
	// MembershipEvictionsTotal counts members the local failure
	// detector moved suspect -> dead.
	MembershipEvictionsTotal = "membership_evictions_total"
	// MembersLive is the current live-view size (alive + suspect),
	// including the node itself.
	MembersLive = "members_live"
	// OverloadTotal counts work requests a server shed with a typed
	// overload reply because the admission gate or executor queue was
	// full.
	OverloadTotal = "overload_total"
	// ExpiredTotal counts queries a server shed with a typed expired
	// reply because their remaining deadline budget could not cover the
	// backlog, plus queued jobs dropped when their deadline passed
	// before execution.
	ExpiredTotal = "expired_total"
	// DedupHitsTotal counts execute/fetch retries answered from the
	// at-most-once dedup window instead of re-running the query.
	DedupHitsTotal = "dedup_hits_total"
	// FailoversTotal counts client failovers from a failed winning
	// bidder to a runner-up from the same proposal round.
	FailoversTotal = "failovers_total"
	// RetryBudgetExhaustedTotal counts retries the client refused
	// because its token-bucket retry budget ran dry.
	RetryBudgetExhaustedTotal = "retry_budget_exhausted_total"
	// BidCacheHitsTotal counts queries admitted straight to execute from
	// the client's winning-bid cache, skipping the negotiate fan-out.
	BidCacheHitsTotal = "bid_cache_hits_total"
	// BidCacheMissesTotal counts cache-enabled negotiation rounds that
	// found no valid cached ladder (absent, expired, or stale-stamped).
	BidCacheMissesTotal = "bid_cache_misses_total"
	// BidCacheInvalidationsTotal counts cached ladders dropped for any
	// reason: epoch bump, membership change, TTL, typed refusal, supply
	// race, or a fatal error from a cached candidate.
	BidCacheInvalidationsTotal = "bid_cache_invalidations_total"
	// BatchWindowsTotal counts batched call-for-proposals fan-outs (one
	// per sealed coalescing window, however many queries rode it).
	BatchWindowsTotal = "batch_windows_total"
	// BatchCoalescedTotal counts queries that rode another query's
	// window instead of paying their own negotiate fan-out.
	BatchCoalescedTotal = "batch_coalesced_total"
	// ShardSkipsTotal counts per-node CFPs not sent because the member's
	// gossiped relation filter proved it infeasible for the query.
	ShardSkipsTotal = "shard_skips_total"
	// FetchBatchesTotal counts binary batch frames a server streamed to
	// frame-speaking fetch clients.
	FetchBatchesTotal = "fetch_batches_total"
	// FetchBytesTotal accumulates frame bytes (headers included) a
	// server streamed on the binary fetch lane.
	FetchBytesTotal = "fetch_bytes_total"
	// InflightWork is the server's current count of admitted work
	// requests (negotiate/execute/fetch being handled).
	InflightWork = "inflight_work"
	// QueueDepth is the server's current executor-queue depth (jobs
	// admitted but not yet running).
	QueueDepth = "queue_depth"
)

// FrameNegotiatedPrefix keys the per-version frame-negotiation counters:
// FrameNegotiatedCounter(v) registers under "frame_negotiated_v<v>_total"
// so the flat Health registry stays label-free, and exposition layers
// render the family as frame_negotiated_total{version="<v>"}.
const FrameNegotiatedPrefix = "frame_negotiated_v"

// FrameNegotiatedCounter names the counter for fetches negotiated onto
// binary frame version v.
func FrameNegotiatedCounter(v int) string {
	return fmt.Sprintf("%s%d_total", FrameNegotiatedPrefix, v)
}

// FrameNegotiatedVersion parses a FrameNegotiatedCounter name back into
// its version label, reporting ok=false for unrelated names.
func FrameNegotiatedVersion(name string) (string, bool) {
	if len(name) <= len(FrameNegotiatedPrefix)+len("_total") ||
		name[:len(FrameNegotiatedPrefix)] != FrameNegotiatedPrefix ||
		name[len(name)-len("_total"):] != "_total" {
		return "", false
	}
	return name[len(FrameNegotiatedPrefix) : len(name)-len("_total")], true
}

// Health is a concurrency-safe named counter/gauge set for
// failure-domain observability: breaker transitions, retries, drains,
// checkpoint freshness. Zero value is not usable; call NewHealth.
type Health struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewHealth builds an empty health registry.
func NewHealth() *Health {
	return &Health{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Inc adds one to the named counter and returns the new value.
func (h *Health) Inc(name string) int64 { return h.Add(name, 1) }

// Add adds delta to the named counter and returns the new value. A
// name already registered as a gauge panics: the two kinds used to
// merge into one Snapshot map and silently overwrite each other, so a
// collision is a programming error surfaced at the first write, not a
// corrupted metric discovered in a dashboard.
func (h *Health) Add(name string, delta int64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, clash := h.gauges[name]; clash {
		panic(fmt.Sprintf("metrics: %q is already registered as a gauge", name))
	}
	h.counters[name] += delta
	return h.counters[name]
}

// Counter reads the named counter (0 when never incremented).
func (h *Health) Counter(name string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counters[name]
}

// SetGauge records an instantaneous value. A name already registered
// as a counter panics (see Add).
func (h *Health) SetGauge(name string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, clash := h.counters[name]; clash {
		panic(fmt.Sprintf("metrics: %q is already registered as a counter", name))
	}
	h.gauges[name] = v
}

// Gauge reads the named gauge (0 when never set).
func (h *Health) Gauge(name string) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gauges[name]
}

// Snapshot merges counters and gauges into one map, safe for the
// caller to mutate. Registration panics guarantee the two namespaces
// are disjoint, so the merge cannot drop a metric.
func (h *Health) Snapshot() map[string]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]float64, len(h.counters)+len(h.gauges))
	for k, v := range h.counters {
		out[k] = float64(v)
	}
	for k, v := range h.gauges {
		out[k] = v
	}
	return out
}

// Counters copies the counter namespace, for exposition layers that
// must emit counters and gauges with distinct metric types.
func (h *Health) Counters() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int64, len(h.counters))
	for k, v := range h.counters {
		out[k] = v
	}
	return out
}

// Gauges copies the gauge namespace.
func (h *Health) Gauges() map[string]float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]float64, len(h.gauges))
	for k, v := range h.gauges {
		out[k] = v
	}
	return out
}
