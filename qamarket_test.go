package qamarket_test

import (
	"math/rand"
	"testing"
	"time"

	qm "github.com/qamarket/qamarket"
)

// TestPublicFacadeMarket exercises the README quickstart through the
// public API.
func TestPublicFacadeMarket(t *testing.T) {
	set := qm.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	agent, err := qm.NewAgent(set, qm.DefaultAgentConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	agent.BeginPeriod()
	if got := agent.PlannedSupply(); got.Total() != 5 {
		t.Fatalf("planned supply %v", got)
	}
	if !agent.Offer(1) {
		t.Fatal("offer refused")
	}
	if err := agent.Accept(1); err != nil {
		t.Fatal(err)
	}
	agent.EndPeriod()
}

// TestPublicFacadeSimulator runs a miniature end-to-end simulation via
// the façade only.
func TestPublicFacadeSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := qm.Table3Params()
	p.Nodes = 6
	p.Relations = 12
	p.AvgMirrors = 3
	p.HashJoinNodes = 5
	cat, err := qm.GenerateCatalog(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cat.Nodes {
		n.Holds[0] = true
	}
	ts := []qm.Template{{Class: 0, Relations: []int{0}, Selectivity: 1}}
	fed, err := qm.NewFederation(qm.SimConfig{
		Catalog: cat, Templates: ts, PeriodMs: 500,
	}, qm.NewQANTMechanism(qm.DefaultAgentConfig(1)))
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []qm.Arrival
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, qm.Arrival{At: int64(i * 100), Class: 0, Origin: i % 6})
	}
	col, err := fed.Run(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if col.Completed()+col.Dropped() != 40 {
		t.Fatalf("accounting: %d+%d", col.Completed(), col.Dropped())
	}
	if cap := qm.EstimateCapacity(cat, ts, []float64{1}); cap <= 0 {
		t.Errorf("capacity %g", cap)
	}
}

// TestPublicFacadeFederation stands up a one-node federation via the
// façade.
func TestPublicFacadeFederation(t *testing.T) {
	db := qm.OpenDB()
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	node, err := qm.StartNode("127.0.0.1:0", qm.NodeConfig{DB: db, MsPerCostUnit: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	client, err := qm.NewClient(qm.ClientConfig{
		Addrs: []string{node.Addr()}, Mechanism: qm.MechQANT,
		PeriodMs: 50, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := client.Run(1, "SELECT COUNT(*) FROM t")
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	d := qm.NewDistributor(client)
	dr, err := d.Run(2, "SELECT a FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Result.Rows) != 1 {
		t.Fatalf("distributor rows: %v", dr.Result.Rows)
	}
}

// TestPublicFacadeEquitable checks the §6 extension through the façade.
func TestPublicFacadeEquitable(t *testing.T) {
	cons := qm.EquitableSplit(qm.Quantity{6}, []qm.Quantity{{4}, {4}})
	if qm.Satisfaction(cons[0], qm.Quantity{4}) != 0.75 {
		t.Errorf("split %v", cons)
	}
}
