// Distributed: a federated join no single node can answer.
//
// Two nodes hold disjoint halves of a tiny retail schema (orders on
// one, customers on the other). The Distributor decomposes the join
// into per-relation subqueries — negotiated through the same query
// market as whole queries — pulls the fragments, and joins them
// locally. This is the Query/Process-Trading setting of the paper's
// Section 2.1 in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/sqldb"
)

func main() {
	seed := func(stmts ...string) *sqldb.DB {
		db := sqldb.Open()
		for _, s := range stmts {
			if _, _, err := db.Exec(s); err != nil {
				log.Fatalf("%s: %v", s, err)
			}
		}
		return db
	}
	ordersDB := seed(
		"CREATE TABLE orders (id INT, cust INT, amount FLOAT)",
		`INSERT INTO orders VALUES
			(1, 10, 25.0), (2, 10, 14.5), (3, 20, 99.0),
			(4, 30, 5.25), (5, 30, 42.0), (6, 20, 7.75)`,
		"CREATE INDEX orders_cust ON orders (cust)",
	)
	customersDB := seed(
		"CREATE TABLE customers (id INT, name TEXT, vip BOOL)",
		`INSERT INTO customers VALUES
			(10, 'ada', TRUE), (20, 'bob', FALSE), (30, 'cyd', TRUE)`,
	)

	var addrs []string
	for i, db := range []*sqldb.DB{ordersDB, customersDB} {
		node, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB: db, MsPerCostUnit: 0.05, PeriodMs: 100,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
		fmt.Printf("node %d (%s) holds %v\n", i, node.Addr(), db.Tables())
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs: addrs, Mechanism: cluster.MechQANT, PeriodMs: 100, Timeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	d := cluster.NewDistributor(client)

	sql := `SELECT customers.name, COUNT(*) AS orders, SUM(orders.amount) AS total
		FROM orders JOIN customers ON orders.cust = customers.id
		WHERE customers.vip = TRUE AND orders.amount > 6.0
		GROUP BY customers.name ORDER BY customers.name`
	fmt.Println("\nquery:", sql)

	out, err := d.Run(1, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecomposed into %d subqueries (%d fragment rows, %.1f ms total):\n",
		out.Subqueries, out.FragmentRows, out.TotalMs)
	for node, n := range out.PerNode {
		fmt.Printf("  node %s supplied %d fragment(s)\n", node, n)
	}
	fmt.Println("\nresult:")
	fmt.Println(" ", out.Result.Columns)
	for _, row := range out.Result.Rows {
		fmt.Println(" ", row)
	}
}
