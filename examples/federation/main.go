// Federation: a real three-node federation over localhost TCP.
//
// Each node runs an embedded sqldb instance holding copies of a small
// star schema plus a QA-NT market agent; a client negotiates every
// query with all nodes and dispatches it to the best offer. This is
// the Section 5.2 setup in miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/market"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 3, Tables: 8, Views: 12, RowsPerTable: 150,
		MinCopies: 2, MaxCopies: 3,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Heterogeneous nodes: node 0 fast, node 1 slow disk, node 2 slow CPU.
	slow := []struct{ io, cpu float64 }{{1, 1}, {6, 2}, {2, 6}}
	var addrs []string
	for i := 0; i < 3; i++ {
		node, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:            ds.DBs[i],
			IOSlowdown:    slow[i].io,
			CPUSlowdown:   slow[i].cpu,
			MsPerCostUnit: 0.02,
			PeriodMs:      100,
			Market:        market.DefaultConfig(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
		fmt.Printf("node %d listening on %s (%d tables, %d views)\n",
			i, node.Addr(), len(ds.DBs[i].Tables()), len(ds.DBs[i].Views()))
	}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:     addrs,
		Mechanism: cluster.MechQANT,
		PeriodMs:  100,
		Timeout:   5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	templates, err := ds.GenerateTemplates(6, 1, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrunning 12 star queries through the query market:")
	for i := 0; i < 12; i++ {
		sql := templates[i%len(templates)].Instantiate(rng)
		out := client.Run(int64(i), sql)
		if out.Err != nil {
			log.Fatalf("query %d: %v", i, out.Err)
		}
		fmt.Printf("  q%02d -> node %s  %3d rows  assign %5.1f ms  exec %6.1f ms  total %6.1f ms\n",
			i, out.Node, out.Rows, out.AssignMs, out.ExecMs, out.TotalMs)
	}

	fmt.Println("\nper-node market state:")
	for _, addr := range addrs {
		st, err := client.Stats(addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %s: executed=%d offers=%d rejects=%d classes=%d\n",
			addr, st.Executed, st.Offers, st.Rejects, len(st.Prices))
	}
}
