// Quickstart: a minimal QA-NT market on a single node.
//
// It reproduces the paper's Section 3.3 narrative on the Figure 1
// system: node N1 evaluates q1 in 400 ms and q2 in 100 ms per query
// with a 500 ms period. With equal prices N1 supplies only q2 (the
// denser class); when q1 demand keeps failing, q1's price rises until
// N1 starts supplying q1 too.
package main

import (
	"fmt"
	"log"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
)

func main() {
	// N1's supply set: any mix of q1 (400 ms) and q2 (100 ms) queries
	// fitting a 500 ms period.
	set := economics.TimeBudgetSupplySet{Cost: []float64{400, 100}, Budget: 500}
	agent, err := market.NewAgent(set, market.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}

	for period := 1; period <= 12; period++ {
		agent.BeginPeriod()
		supply := agent.PlannedSupply()
		fmt.Printf("period %2d: prices %v supply %v", period, agent.Prices(), supply)
		if supply[0] > 0 {
			fmt.Println("  <- q1 entered the supply vector")
			return
		}
		fmt.Println()

		// Demand this period: four q1 requests (all fail: no q1 supply,
		// so each failure raises q1's price) and buyers for all the q2
		// supply (so q2's price holds).
		for i := 0; i < 4; i++ {
			agent.Offer(0)
		}
		for agent.Offer(1) {
			if err := agent.Accept(1); err != nil {
				log.Fatal(err)
			}
		}
		agent.EndPeriod()
	}
	fmt.Println("q1 never entered the supply vector (unexpected)")
}
