// Overloadsim: the paper's headline result on the simulator.
//
// It builds a 24-node heterogeneous federation with the two-class
// workload of Section 5.1 (Q1 ≈ 1000 ms everywhere, Q2 ≈ 500 ms on
// half the nodes), drives it with a 0.05 Hz sinusoid at twice the
// system capacity, and compares every allocation mechanism. Expect the
// Figure 4 ordering: QA-NT best under overload, Greedy close, the
// load balancers far behind.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sim"
	"github.com/qamarket/qamarket/internal/workload"
)

func main() {
	const nodes = 24
	rng := rand.New(rand.NewSource(7))
	p := catalog.Table3()
	p.Nodes = nodes
	p.Relations = 60
	p.HashJoinNodes = nodes - 2
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range cat.Nodes {
		n.Holds[0] = true
		delete(n.Holds, 1)
	}
	for _, n := range cat.Nodes[:nodes/2] {
		n.Holds[1] = true
	}
	templates := []costmodel.Template{
		{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
		{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
	}
	model := costmodel.New(cat)
	for i, target := range []float64{1000, 500} {
		best, _ := model.EstimateBest(templates[i])
		templates[i].CostScale = target / best
	}

	capacity := sim.EstimateCapacity(cat, templates, []float64{2, 1})
	fmt.Printf("federation capacity: %.1f queries/s\n", capacity)

	peak := 2.0 * capacity * 3.1416 // 2x average overload
	s1 := workload.Sinusoid{Class: 0, Origin: -1, OriginCount: nodes, Freq: 0.05,
		PeakRate: peak * 2 / 3, Duration: 40000}
	s2 := workload.Sinusoid{Class: 1, Origin: -1, OriginCount: nodes, Freq: 0.05,
		PeakRate: peak / 3, PhaseDeg: 900, Duration: 40000}
	arrivals := append(s1.Generate(rng), s2.Generate(rng)...)
	workload.Sort(arrivals)
	fmt.Printf("workload: %d queries over 40 s (2x capacity at the average)\n\n", len(arrivals))

	mechs := map[string]alloc.Mechanism{
		"qa-nt":             alloc.NewQANT(market.DefaultConfig(2)),
		"greedy":            alloc.NewGreedy(nil, 0),
		"random":            alloc.NewRandom(rand.New(rand.NewSource(1))),
		"round-robin":       alloc.NewRoundRobin(),
		"bnqrd":             alloc.NewBNQRD(),
		"two-random-probes": alloc.NewTwoRandomProbes(rand.New(rand.NewSource(2))),
	}
	type row struct {
		name string
		mean float64
	}
	var rows []row
	for name, mech := range mechs {
		fed, err := sim.New(sim.Config{Catalog: cat, Templates: templates, PeriodMs: 500}, mech)
		if err != nil {
			log.Fatal(err)
		}
		col, err := fed.Run(arrivals)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, col.Summarize().MeanRespMs})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean < rows[j].mean })
	best := rows[0].mean
	for _, r := range rows {
		fmt.Printf("%-18s mean %8.0f ms  (%.2fx best)\n", r.name, r.mean, r.mean/best)
	}
}
