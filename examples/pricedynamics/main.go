// Pricedynamics: trace the non-tâtonnement price process and compare
// it against the centralized tâtonnement reference.
//
// A two-node market (the Figure 1 system) faces a steady demand of one
// q1 and five q2 per period. The umpire-based tâtonnement process of
// eq. (6) finds the equilibrium prices centrally; the decentralized
// QA-NT agents converge to a supply profile with the same aggregate by
// reacting only to their own trading failures (Proposition 3.1).
package main

import (
	"fmt"
	"log"

	"github.com/qamarket/qamarket/internal/economics"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/vector"
)

func main() {
	costs := [][]float64{
		{400, 100}, // N1
		{450, 500}, // N2
	}
	demand := []vector.Quantity{{1, 5}, {0, 0}} // steady per-period demand

	// Centralized reference: the umpire's tâtonnement.
	sets := []economics.SupplySet{
		economics.TimeBudgetSupplySet{Cost: costs[0], Budget: 500},
		economics.TimeBudgetSupplySet{Cost: costs[1], Budget: 500},
	}
	res, err := economics.Tatonnement(demand, sets, vector.NewPrices(2, 1), economics.DefaultTatonnement())
	if err != nil {
		log.Fatalf("tâtonnement: %v", err)
	}
	fmt.Printf("tâtonnement equilibrium after %d iterations: prices %v, aggregate supply %v\n\n",
		res.Iterations, res.Prices, vector.Sum(res.Supply))

	// Decentralized QA-NT: each node adjusts only its own prices.
	agents := make([]*market.Agent, 2)
	for i := range agents {
		a, err := market.NewAgent(economics.TimeBudgetSupplySet{Cost: costs[i], Budget: 500}, market.DefaultConfig(2))
		if err != nil {
			log.Fatal(err)
		}
		agents[i] = a
	}
	fmt.Println("period |       N1 prices       supply |       N2 prices       supply | unserved")
	for period := 1; period <= 15; period++ {
		for _, a := range agents {
			a.BeginPeriod()
		}
		// Serve the period's demand: for each query, take the first
		// offering node (clients are indifferent here).
		unserved := 0
		for class, want := range []int{1, 5} {
			for q := 0; q < want; q++ {
				served := false
				for _, a := range agents {
					if a.Offer(class) {
						if err := a.Accept(class); err != nil {
							log.Fatal(err)
						}
						served = true
						break
					}
				}
				if !served {
					unserved++
				}
			}
		}
		fmt.Printf("%6d | %s %v | %s %v | %8d\n",
			period,
			agents[0].Prices(), agents[0].PlannedSupply(),
			agents[1].Prices(), agents[1].PlannedSupply(),
			unserved)
		for _, a := range agents {
			a.EndPeriod()
		}
	}
	fmt.Println("\nboth processes steer N1 toward q2 and N2 toward q1 — the")
	fmt.Println("allocation of Figure 1's QA strategy — without exchanging prices.")
}
