// Command qanode runs one federation server node: an embedded sqldb
// instance loaded from a SQL script, wrapped with the QA-NT market
// agent, listening for negotiate/execute requests over TCP.
//
// Example:
//
//	qanode -addr 127.0.0.1:7001 -init schema.sql -cpu-slowdown 2 -io-slowdown 6
//
// The init script is a sequence of semicolon-free statements separated
// by blank lines or lines ending in ';'.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sqldb"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7001", "listen address")
		initFile     = flag.String("init", "", "SQL script creating tables/views and loading data")
		slow         = flag.Float64("slowdown", 1, "uniform execution slowdown factor")
		ioSlow       = flag.Float64("io-slowdown", 0, "I/O (scan) slowdown; 0 = use -slowdown")
		cpuSlow      = flag.Float64("cpu-slowdown", 0, "CPU (join/sort) slowdown; 0 = use -slowdown")
		msPerUnit    = flag.Float64("ms-per-unit", 0.05, "milliseconds per planner cost unit")
		period       = flag.Int64("period", 500, "market period T in ms")
		lambda       = flag.Float64("lambda", 0.1, "price adjustment step λ")
		threshold    = flag.Float64("threshold", 0, "price activation threshold (0 = market always active)")
		latency      = flag.Duration("link-latency", 0, "added reply latency (wireless node)")
		noise        = flag.Float64("exec-noise", 0, "execution time variability fraction")
		snapshotPath = flag.String("snapshot", "", "market-state checkpoint file (restored on boot, rewritten atomically every -snapshot-interval and after the shutdown drain)")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "how often to checkpoint market state (requires -snapshot)")
		drainBudget  = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain budget on shutdown: in-flight queries get this long to finish")
		nodeID       = flag.String("id", "", "stable node identity in the membership registry (empty = random)")
		join         = flag.String("join", "", "comma-separated addresses of existing federation members to announce to")
		gossipPeriod = flag.Int64("gossip-period", 250, "anti-entropy gossip round length in ms")
		gossipFanout = flag.Int("gossip-fanout", 2, "live peers contacted per gossip round")
		suspectAfter = flag.Int("suspect-after", 3, "stalled gossip rounds before a member is suspected")
		evictAfter   = flag.Int("evict-after", 3, "further stalled rounds before a suspect is evicted")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address (/metrics, plus /debug/pprof); empty disables")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently handled work requests before typed overload refusals (0 = default 256)")
		maxQueue     = flag.Int("max-queue", 0, "executor queue depth before typed overload refusals (0 = default 256)")
		dedupWindow  = flag.Duration("dedup-window", 0, "how long execute/fetch outcomes stay replayable for at-most-once retries (0 = default 60s)")
		driverName   = flag.String("driver", "row", "storage executor: row (legacy engine), vector (columnar), mock:row, mock:vector")
	)
	flag.Parse()

	db := sqldb.Open()
	if *initFile != "" {
		if err := loadScript(db, *initFile); err != nil {
			die(err)
		}
	}
	drv, err := engine.SelectDriver(*driverName, db)
	if err != nil {
		die(err)
	}
	mcfg := market.Config{Lambda: *lambda, InitialPrice: 1, ActivationThreshold: *threshold, Classes: 1}
	node, err := cluster.StartNode(*addr, cluster.NodeConfig{
		DB:                 db,
		Driver:             drv,
		Slowdown:           *slow,
		IOSlowdown:         *ioSlow,
		CPUSlowdown:        *cpuSlow,
		MsPerCostUnit:      *msPerUnit,
		PeriodMs:           *period,
		LinkLatency:        *latency,
		ExecNoise:          *noise,
		NoiseSeed:          time.Now().UnixNano(),
		DrainTimeout:       *drainBudget,
		MaxInflight:        *maxInflight,
		MaxQueue:           *maxQueue,
		DedupWindow:        *dedupWindow,
		Market:             mcfg,
		NodeID:             *nodeID,
		Seeds:              splitSeeds(*join),
		GossipPeriodMs:     *gossipPeriod,
		GossipFanout:       *gossipFanout,
		SuspectAfterRounds: *suspectAfter,
		EvictAfterRounds:   *evictAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		die(err)
	}
	var ckpt *cluster.Checkpointer
	if *snapshotPath != "" {
		restored, err := cluster.RestoreNodeFromCheckpoint(node, *snapshotPath)
		if err != nil {
			die(err)
		}
		if restored {
			fmt.Printf("qanode: restored market state from %s\n", *snapshotPath)
		}
		ckpt, err = cluster.StartCheckpointer(node, *snapshotPath, *snapInterval)
		if err != nil {
			die(err)
		}
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			die(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", node.MetricsHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "qanode: metrics server:", err)
			}
		}()
		fmt.Printf("qanode: metrics on http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("qanode: %s serving on %s via %s executor (%d tables, %d views)\n",
		node.ID(), node.Addr(), drv.Name(), len(drv.Tables()), len(drv.Views()))
	if seeds := splitSeeds(*join); len(seeds) > 0 {
		fmt.Printf("qanode: joining federation via %v\n", seeds)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("qanode: draining (budget %v)\n", *drainBudget)
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := node.Close(); err != nil {
		die(err)
	}
	if ckpt != nil {
		// Final checkpoint after the drain so the saved price table
		// includes everything executed up to the very end.
		if err := ckpt.Stop(); err != nil {
			die(err)
		}
		fmt.Printf("qanode: saved market state to %s\n", *snapshotPath)
	}
}

// splitSeeds parses the -join list, dropping empty entries.
func splitSeeds(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// loadScript executes a ';'-separated SQL script file.
func loadScript(db *sqldb.DB, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if _, err := sqldb.ExecScript(db, string(raw)); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qanode:", err)
	os.Exit(1)
}
