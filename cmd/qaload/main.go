// Command qaload is the federation load generator: it drives a set of
// qanode servers (or a self-hosted in-process federation) with a
// seeded query mix and reports throughput plus latency histograms, the
// transport trajectory's measurement tool.
//
// Closed mode (default) keeps -clients workers each running one query
// at a time until -queries complete: the classic closed-loop benchmark
// where concurrency is the controlled variable. Open mode fires
// queries at a fixed -rate for -duration regardless of completions,
// measuring behavior under offered load.
//
// Examples:
//
//	qaload -selfnodes 3 -clients 8 -queries 200
//	qaload -selfnodes 3 -mode open -rate 50 -duration 10s -mechanism qa-nt
//	qaload -nodes 127.0.0.1:7001,127.0.0.1:7002 -sql "SELECT COUNT(*) FROM t00" -queries 500 -json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/trace"
)

type options struct {
	nodes       string
	selfNodes   int
	mechanism   string
	transport   string
	poolSize    int
	clients     int
	queries     int
	mode        string
	rate        float64
	duration    time.Duration
	mix         int
	joins       int
	seed        int64
	period      int64
	msPerCost   float64
	sql         string
	jsonOut     bool
	trace       bool
	deadline    time.Duration
	retryBudget float64
	maxInflight int
	maxQueue    int
	tables      int
	views       int
	rows        int
	join        bool
	settle      time.Duration
	refresh     time.Duration
	batch       time.Duration
	bidCache    time.Duration
	noShard     bool
	fetch       bool
	driverName  string
	enc         string
	frame       bool
	fetchBatch  int
}

// loadReport is qaload's result, printed as text or JSON (-json); the
// JSON form is what cmd/benchjson records into BENCH_qamarket.json.
type loadReport struct {
	Mode      string `json:"mode"`
	Transport string `json:"transport"`
	Mechanism string `json:"mechanism"`
	Clients   int    `json:"clients"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	// Shed counts queries every node refused with typed overload
	// replies until the retry limit — the federation protecting itself,
	// not failing. Expired counts queries whose deadline (-deadline)
	// ran out, client-side or via typed expired sheds. Neither is
	// folded into Failed, so overload experiments can tell refusal
	// from breakage.
	Shed      int64                          `json:"shed"`
	Expired   int64                          `json:"expired"`
	Retries   int64                          `json:"retries"`
	ElapsedMs float64                        `json:"elapsed_ms"`
	QPS       float64                        `json:"qps"`
	TotalMs   metrics.HistSummary            `json:"total_ms"`
	AssignMs  metrics.HistSummary            `json:"assign_ms"`
	RPC       map[string]metrics.HistSummary `json:"rpc"`
	// RPCCounts is the absolute number of RPC attempts per op (failures
	// included); RPCPerQuery divides each by Completed — the
	// amortization metric. Unbatched, uncached negotiation costs ≈ one
	// negotiate RPC per view member per query; batching, the bid cache,
	// and shard probing drive the per-query figure toward O(1).
	RPCCounts   map[string]int64   `json:"rpc_counts"`
	RPCPerQuery map[string]float64 `json:"rpc_per_query"`
	// Amortization carries the client's batching/caching/sharding
	// counters (bid cache hits, misses, invalidations; batch windows and
	// coalesced riders; shard skips), present when any are non-zero.
	Amortization map[string]float64 `json:"amortization,omitempty"`
	// Phases breaks query latency down by lifecycle span name
	// (run/negotiate/execute), aggregated from the client-side tracer
	// when -trace is on.
	Phases map[string]metrics.HistSummary `json:"phases,omitempty"`
	// Wire accounting, counted at the socket by the client transport:
	// everything read from and written to the federation, framing
	// included. BytesPerQuery divides the total by Completed — the
	// per-encoding comparison metric (-enc/-frame sweeps read it).
	RPCBytesIn    int64   `json:"rpc_bytes_in"`
	RPCBytesOut   int64   `json:"rpc_bytes_out"`
	BytesPerQuery float64 `json:"bytes_per_query,omitempty"`
	// Fetch-mode (-fetch) extras: the negotiated result encoding and the
	// rows actually shipped back.
	Encoding    string `json:"encoding,omitempty"`
	RowsFetched int64  `json:"rows_fetched,omitempty"`

	// Executor is the storage driver self-hosted nodes ran ("" when the
	// federation is external and qaload cannot know).
	Executor string `json:"executor,omitempty"`
}

func main() {
	var o options
	flag.StringVar(&o.nodes, "nodes", "", "comma-separated server addresses (empty: self-host)")
	flag.IntVar(&o.selfNodes, "selfnodes", 3, "nodes to self-host in-process when -nodes is empty")
	flag.StringVar(&o.mechanism, "mechanism", "greedy", "allocation mechanism: greedy | qa-nt")
	flag.StringVar(&o.transport, "transport", "pooled", "rpc transport: pooled | fresh")
	flag.IntVar(&o.poolSize, "poolsize", 0, "connections per node per lane (0: default)")
	flag.IntVar(&o.clients, "clients", 8, "concurrent workers (closed mode)")
	flag.IntVar(&o.queries, "queries", 200, "total queries to run (closed mode)")
	flag.StringVar(&o.mode, "mode", "closed", "load mode: closed | open")
	flag.Float64Var(&o.rate, "rate", 20, "arrival rate in queries/sec (open mode)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "how long to offer load (open mode)")
	flag.IntVar(&o.mix, "mix", 6, "distinct query templates in the workload mix")
	flag.IntVar(&o.joins, "joins", 2, "joins per generated template")
	flag.Int64Var(&o.seed, "seed", 17, "workload seed")
	flag.Int64Var(&o.period, "period", 50, "market period / resubmission base in ms")
	flag.Float64Var(&o.msPerCost, "mspercost", 0.002, "self-hosted node speed (ms per plan cost unit)")
	flag.StringVar(&o.sql, "sql", "", "fixed query instead of a generated mix (required with -nodes)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON")
	flag.BoolVar(&o.trace, "trace", false, "record client-side lifecycle spans and report a per-phase latency breakdown")
	flag.DurationVar(&o.deadline, "deadline", 0, "end-to-end budget per query, propagated as deadline_ms so nodes shed late work (0 = none)")
	flag.Float64Var(&o.retryBudget, "retry-budget", 0, "client-wide retry tokens per second; retries beyond the budget fail fast (0 = unlimited)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "self-hosted nodes: max concurrent work requests before typed overload (0 = default)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "self-hosted nodes: executor queue depth before typed overload (0 = default)")
	flag.IntVar(&o.tables, "tables", 6, "self-hosted dataset: base tables to generate")
	flag.IntVar(&o.views, "views", 8, "self-hosted dataset: views to generate")
	flag.IntVar(&o.rows, "rows", 40, "self-hosted dataset: rows per base table")
	flag.BoolVar(&o.join, "join", false, "self-hosted nodes: gossip-join them into one federation (node 0 seeds the rest), so catalog filters and market epochs propagate")
	flag.DurationVar(&o.settle, "settle", 0, "wait this long after startup for gossip to converge before offering load (with -join)")
	flag.DurationVar(&o.refresh, "refresh", 0, "client membership view refresh interval; needed to learn gossiped filters/epochs (0 = static view)")
	flag.DurationVar(&o.batch, "batch", 0, "coalesce same-class negotiations arriving within this window into one batched CFP per node (0 = off)")
	flag.DurationVar(&o.bidCache, "bidcache", 0, "winning-bid cache TTL; epoch-stamped ladders admit same-class queries without renegotiating (0 = off)")
	flag.BoolVar(&o.noShard, "noshard", false, "disable per-class shard probing (fan CFPs to every member regardless of gossiped filters)")
	flag.BoolVar(&o.fetch, "fetch", false, "ship results back (client.Fetch) instead of execute-only (client.Run)")
	flag.StringVar(&o.enc, "enc", "compact", "fetch result encoding to advertise: compact | tagged (JSON downgrade path)")
	flag.BoolVar(&o.frame, "frame", true, "negotiate binary frame streaming for fetches (false: force JSON replies)")
	flag.IntVar(&o.fetchBatch, "fetch-batch", 0, "max rows per streamed fetch batch to request (0: server default)")
	flag.StringVar(&o.driverName, "driver", "row", "storage executor for self-hosted nodes: row | vector | mock:row | mock:vector")
	flag.Parse()

	rep, err := run(&o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qaload:", err)
		os.Exit(1)
	}
	if o.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "qaload:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	printReport(rep)
}

func run(o *options) (*loadReport, error) {
	rng := rand.New(rand.NewSource(o.seed))

	// Resolve the target federation: external addresses, or a
	// self-hosted one over a generated dataset.
	var addrs []string
	var sqls func(workerRng *rand.Rand) string
	if o.nodes != "" {
		if o.sql == "" {
			return nil, fmt.Errorf("-nodes needs -sql (no dataset to generate a mix from)")
		}
		addrs = strings.Split(o.nodes, ",")
		sqls = func(*rand.Rand) string { return o.sql }
	} else {
		if o.selfNodes < 1 {
			return nil, fmt.Errorf("-selfnodes must be >= 1")
		}
		maxCopies := 3
		if maxCopies > o.selfNodes {
			maxCopies = o.selfNodes
		}
		minCopies := 2
		if minCopies > maxCopies {
			minCopies = maxCopies
		}
		ds, err := cluster.GenerateDataset(cluster.DatasetParams{
			Nodes: o.selfNodes, Tables: o.tables, Views: o.views, RowsPerTable: o.rows,
			MinCopies: minCopies, MaxCopies: maxCopies,
		}, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < o.selfNodes; i++ {
			// Heterogeneous speeds like the paper's PCs: the slowest node is
			// ~14x the fastest regardless of federation size, instead of
			// growing linearly with the node index.
			spread := 0.0
			if o.selfNodes > 1 {
				spread = float64(i) / float64(o.selfNodes-1)
			}
			drv, err := engine.SelectDriver(o.driverName, ds.DBs[i])
			if err != nil {
				return nil, err
			}
			cfg := cluster.NodeConfig{
				DB:            ds.DBs[i],
				Driver:        drv,
				Slowdown:      1 + 13*spread,
				MsPerCostUnit: o.msPerCost,
				PeriodMs:      o.period,
				MaxInflight:   o.maxInflight,
				MaxQueue:      o.maxQueue,
				Market:        market.DefaultConfig(1),
			}
			if o.join {
				// One federation: node 0 seeds, the rest announce to it, and
				// gossip spreads catalog filters + market epochs to everyone.
				cfg.NodeID = fmt.Sprintf("load-%03d", i)
				if i > 0 {
					cfg.Seeds = []string{addrs[0]}
				}
			}
			n, err := cluster.StartNode("127.0.0.1:0", cfg)
			if err != nil {
				return nil, err
			}
			defer n.Close()
			addrs = append(addrs, n.Addr())
		}
		if o.sql != "" {
			sqls = func(*rand.Rand) string { return o.sql }
		} else {
			templates, err := ds.GenerateTemplates(o.mix, o.joins, rng)
			if err != nil {
				return nil, err
			}
			sqls = func(workerRng *rand.Rand) string {
				return templates[workerRng.Intn(len(templates))].Instantiate(workerRng)
			}
		}
	}

	var tracer *trace.Recorder
	if o.trace {
		// Every query gets a unique ID, so spans group cleanly by name;
		// size the ring for a few spans per query so closed runs keep
		// them all.
		capacity := 8 * o.queries
		if capacity < trace.DefaultCapacity {
			capacity = trace.DefaultCapacity
		}
		tracer = trace.NewRecorder("client", capacity, nil)
	}
	ccfg := cluster.ClientConfig{
		Addrs:          addrs,
		Mechanism:      cluster.Mechanism(o.mechanism),
		PeriodMs:       o.period,
		Timeout:        30 * time.Second,
		Transport:      cluster.Transport(o.transport),
		PoolSize:       o.poolSize,
		Tracer:         tracer,
		QueryTimeout:   o.deadline,
		RetryBudget:    o.retryBudget,
		ViewRefresh:    o.refresh,
		BatchWindow:    o.batch,
		BidCacheTTL:    o.bidCache,
		NoShardProbe:   o.noShard,
		FetchBatchRows: o.fetchBatch,
	}
	switch o.enc {
	case "compact", "":
	case "tagged":
		ccfg.FetchEnc = -1
	default:
		return nil, fmt.Errorf("unknown -enc %q (want compact or tagged)", o.enc)
	}
	if !o.frame {
		ccfg.FrameV = -1
	}
	client, err := cluster.NewClient(ccfg)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	if o.settle > 0 {
		// Let gossip converge and the client's view refresher pick up the
		// full membership (with filters and epochs) before measuring.
		time.Sleep(o.settle)
	}

	rep := &loadReport{
		Mode: o.mode, Transport: o.transport, Mechanism: o.mechanism, Clients: o.clients,
	}
	if o.nodes == "" {
		rep.Executor = o.driverName
	}
	totalHist := metrics.NewHistogram()
	assignHist := metrics.NewHistogram()
	shedHist := metrics.NewHistogram()
	expiredHist := metrics.NewHistogram()
	var completed, failed, shed, expired, retries, rowsFetched atomic.Int64
	runOne := func(id int64, workerRng *rand.Rand) {
		var out cluster.Outcome
		if o.fetch {
			// Result-shipping mode: stream the rows back in bounded batches
			// (or a JSON reply from -frame=false / old nodes), counting them
			// without retaining anything.
			out = client.FetchEach(id, sqls(workerRng), func(*cluster.ColBlock) error { return nil })
			rowsFetched.Add(int64(out.Rows))
		} else {
			out = client.Run(id, sqls(workerRng))
		}
		retries.Add(int64(out.Retries))
		switch {
		case out.Err == nil:
			completed.Add(1)
			totalHist.Observe(out.TotalMs)
			assignHist.Observe(out.AssignMs)
		case errors.Is(out.Err, cluster.ErrExpired):
			expired.Add(1)
			expiredHist.Observe(out.TotalMs)
		case errors.Is(out.Err, cluster.ErrOverloaded), errors.Is(out.Err, cluster.ErrRetryBudget):
			// The federation (or our own retry budget) refused the work:
			// shed by protection, not broken.
			shed.Add(1)
			shedHist.Observe(out.TotalMs)
		default:
			failed.Add(1)
		}
	}

	start := time.Now()
	switch o.mode {
	case "closed":
		if o.clients < 1 || o.queries < 1 {
			return nil, fmt.Errorf("closed mode needs -clients and -queries >= 1")
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < o.clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				workerRng := rand.New(rand.NewSource(o.seed + int64(g) + 1))
				for {
					id := next.Add(1)
					if id > int64(o.queries) {
						return
					}
					runOne(id, workerRng)
				}
			}(g)
		}
		wg.Wait()
	case "open":
		if o.rate <= 0 {
			return nil, fmt.Errorf("open mode needs -rate > 0")
		}
		interval := time.Duration(float64(time.Second) / o.rate)
		deadline := time.Now().Add(o.duration)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		var id int64
		var seq int64
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			id++
			seq++
			wg.Add(1)
			go func(id, seq int64) {
				defer wg.Done()
				runOne(id, rand.New(rand.NewSource(o.seed+seq)))
			}(id, seq)
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("unknown mode %q", o.mode)
	}

	rep.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	rep.Completed = completed.Load()
	rep.Failed = failed.Load()
	rep.Shed = shed.Load()
	rep.Expired = expired.Load()
	rep.Retries = retries.Load()
	rep.QPS = float64(rep.Completed) / (rep.ElapsedMs / 1000)
	rep.TotalMs = totalHist.Summary()
	rep.AssignMs = assignHist.Summary()
	rep.RPC = client.OpLatencies()
	rep.RPCCounts = client.RPCCounts()
	rep.RPCBytesIn, rep.RPCBytesOut = client.WireBytes()
	if rep.Completed > 0 {
		rep.BytesPerQuery = float64(rep.RPCBytesIn+rep.RPCBytesOut) / float64(rep.Completed)
	}
	if o.fetch {
		rep.Encoding = o.enc
		if o.frame {
			rep.Encoding = "frame"
		}
		rep.RowsFetched = rowsFetched.Load()
	}
	if rep.Completed > 0 {
		rep.RPCPerQuery = make(map[string]float64, len(rep.RPCCounts))
		for op, n := range rep.RPCCounts {
			rep.RPCPerQuery[op] = float64(n) / float64(rep.Completed)
		}
	}
	amort := make(map[string]float64)
	for _, key := range []string{
		metrics.BidCacheHitsTotal, metrics.BidCacheMissesTotal, metrics.BidCacheInvalidationsTotal,
		metrics.BatchWindowsTotal, metrics.BatchCoalescedTotal, metrics.ShardSkipsTotal,
	} {
		if v := client.Health()[key]; v > 0 {
			amort[key] = v
		}
	}
	if len(amort) > 0 {
		rep.Amortization = amort
	}
	if tracer != nil {
		rep.Phases = phaseBreakdown(tracer.All())
	}
	// Shed/expired time-to-refusal rides the per-phase breakdown as its
	// own categories: how long a query burned before the protection
	// layer gave its typed answer.
	if rep.Shed > 0 || rep.Expired > 0 {
		if rep.Phases == nil {
			rep.Phases = make(map[string]metrics.HistSummary)
		}
		if rep.Shed > 0 {
			rep.Phases["shed"] = shedHist.Summary()
		}
		if rep.Expired > 0 {
			rep.Phases["expired"] = expiredHist.Summary()
		}
	}
	return rep, nil
}

// phaseBreakdown folds recorded lifecycle spans into one latency
// histogram per phase name (run, negotiate, execute, ...), the
// span-level counterpart to the RPC histograms: RPC measures the wire
// call, phases measure the whole lifecycle step including retries and
// local work.
func phaseBreakdown(spans []trace.Span) map[string]metrics.HistSummary {
	hists := make(map[string]*metrics.Histogram)
	for _, s := range spans {
		h := hists[s.Name]
		if h == nil {
			h = metrics.NewHistogram()
			hists[s.Name] = h
		}
		h.Observe(s.DurMs)
	}
	out := make(map[string]metrics.HistSummary, len(hists))
	for name, h := range hists {
		out[name] = h.Summary()
	}
	return out
}

func printReport(r *loadReport) {
	fmt.Printf("%s load, %s transport, %s: %d completed, %d failed, %d shed, %d expired, %d retries in %.0f ms -> %.1f queries/sec\n",
		r.Mode, r.Transport, r.Mechanism, r.Completed, r.Failed, r.Shed, r.Expired, r.Retries, r.ElapsedMs, r.QPS)
	fmt.Printf("  query total  %s\n", r.TotalMs)
	fmt.Printf("  assignment   %s\n", r.AssignMs)
	if r.RPCBytesIn > 0 || r.RPCBytesOut > 0 {
		fmt.Printf("  wire         %d B in, %d B out (%.0f B/query)\n", r.RPCBytesIn, r.RPCBytesOut, r.BytesPerQuery)
	}
	if r.RowsFetched > 0 {
		fmt.Printf("  fetched      %d rows (%s encoding)\n", r.RowsFetched, r.Encoding)
	}
	ops := make([]string, 0, len(r.RPC))
	for op := range r.RPC {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  rpc %-9s %s\n", op, r.RPC[op])
	}
	counts := make([]string, 0, len(r.RPCPerQuery))
	for op := range r.RPCPerQuery {
		counts = append(counts, op)
	}
	sort.Strings(counts)
	for _, op := range counts {
		fmt.Printf("  rpc/query %-9s %.2f (%d total)\n", op, r.RPCPerQuery[op], r.RPCCounts[op])
	}
	amort := make([]string, 0, len(r.Amortization))
	for k := range r.Amortization {
		amort = append(amort, k)
	}
	sort.Strings(amort)
	for _, k := range amort {
		fmt.Printf("  %-21s %.0f\n", k, r.Amortization[k])
	}
	phases := make([]string, 0, len(r.Phases))
	for ph := range r.Phases {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		fmt.Printf("  phase %-9s %s\n", ph, r.Phases[ph])
	}
}
