// Command scalersmoke is the end-to-end smoke for the market-driven
// autoscaler: a seeded single-founder federation is pushed into
// sustained rejection pressure (phase 1), the controller must recruit
// replicas — every decision bounded by max-step and spaced by the
// cooldown — then the load stops (phase 2) and sustained unsold supply
// must drain the recruits gracefully. Throughout, no query may execute
// twice or be lost: the sum of per-node executed counters must equal
// the client's completions.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/qamarket/qamarket/internal/autoscale"
	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/experiments"
)

const (
	seed      = 31
	maxNodes  = 4
	periodMs  = 25
	gossipMs  = 15
	cooldown  = 2
	maxStep   = 1
	burstSize = 10
)

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: maxNodes, Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: maxNodes, MaxCopies: maxNodes,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		die("templates: %v", err)
	}

	startNode := func(i int, id string, seeds []string) (*cluster.Node, error) {
		return cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:             ds.DBs[i],
			Slowdown:       3,
			MsPerCostUnit:  0.01,
			PeriodMs:       periodMs,
			NodeID:         id,
			Seeds:          seeds,
			GossipPeriodMs: gossipMs,
			MembershipSeed: seed + int64(i),
		})
	}
	founder, err := startNode(0, "founder", nil)
	if err != nil {
		die("founder: %v", err)
	}
	defer founder.CloseNow()
	seeds := []string{founder.Addr()}

	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       seeds,
		Mechanism:   cluster.MechQANT,
		PeriodMs:    periodMs,
		MaxRetries:  100,
		Timeout:     5 * time.Second,
		ViewRefresh: gossipMs * time.Millisecond,
	})
	if err != nil {
		die("client: %v", err)
	}
	defer client.Close()

	pool := &experiments.ReplicaPool{Start: func(seq int) (*cluster.Node, error) {
		idx := 1 + seq
		if idx >= maxNodes {
			return nil, fmt.Errorf("replica slot %d beyond %d", idx, maxNodes)
		}
		return startNode(idx, fmt.Sprintf("r%02d", seq), seeds)
	}}
	defer pool.CloseAll()

	ctl, err := autoscale.New(autoscale.Config{
		Min: 1, Max: maxNodes, CapacityMs: periodMs, Alpha: 0.5,
		Warmup: 1, Cooldown: cooldown, MaxStep: maxStep,
	}, autoscale.ClientSource{Client: client}, pool)
	if err != nil {
		die("controller: %v", err)
	}

	// Phase 1 — pressure: concurrent bursts against the single slow
	// founder drive market rejections; the controller must scale up.
	completed := 0
	scaledUpAt := -1
	for round := 0; round < 60; round++ {
		completed += burst(client, templates, rng, int64(round)*burstSize)
		ctl.Tick()
		if pool.Live() >= 1 {
			scaledUpAt = round
			break
		}
		time.Sleep(periodMs * time.Millisecond)
	}
	if scaledUpAt < 0 {
		die("pressure phase: controller never launched a replica (decisions: %s)", lastReasons(ctl, 5))
	}
	fmt.Printf("scalersmoke: scale-up after %d pressure rounds, %d live recruits\n", scaledUpAt+1, pool.Live())

	// A little more pressure so recruits absorb load (and possibly a
	// second launch lands, still bounded).
	for round := 0; round < 6; round++ {
		completed += burst(client, templates, rng, 10_000+int64(round)*burstSize)
		ctl.Tick()
		time.Sleep(periodMs * time.Millisecond)
	}

	// Phase 2 — glut: the load stops; planned supply goes unsold every
	// period and the controller must gracefully drain its recruits.
	preDrainLive := pool.Live()
	drainedAt := -1
	for round := 0; round < 80; round++ {
		ctl.Tick()
		if _, drained := ctl.Totals(); drained >= 1 {
			drainedAt = round
			break
		}
		time.Sleep(2 * periodMs * time.Millisecond)
	}
	if drainedAt < 0 {
		die("glut phase: controller never drained (recruits live: %d, decisions: %s)", preDrainLive, lastReasons(ctl, 5))
	}
	fmt.Printf("scalersmoke: graceful drain after %d quiet rounds\n", drainedAt+1)

	// Guardrail conduct: every decision bounded by max-step, actions
	// spaced by the cooldown, every record explainable.
	decisions := ctl.Decisions()
	lastAction := -1 << 30
	actions := 0
	for _, d := range decisions {
		a := d.Action
		if a < 0 {
			a = -a
		}
		if a > maxStep {
			die("decision at tick %d moved %d replicas, max-step is %d", d.Tick, a, maxStep)
		}
		if d.Reason == "" {
			die("decision at tick %d has no reason", d.Tick)
		}
		if d.Action != 0 {
			if d.Tick-lastAction < cooldown {
				die("actions at ticks %d and %d violate cooldown %d", lastAction, d.Tick, cooldown)
			}
			lastAction = d.Tick
			actions++
		}
	}
	launched, drained := ctl.Totals()

	// Executed-once: every completion executed on exactly one node —
	// across founders, recruits, and drained recruits.
	executed := founder.Executed()
	for _, n := range pool.Nodes() {
		executed += n.Executed()
	}
	if executed != completed {
		die("executed-once violated: %d completions but %d node executions", completed, executed)
	}

	fmt.Printf("scalersmoke: ok in %.1fs — %d completed, %d executed (once each), %d decisions (%d actions: %d launched, %d drained), max-step<=%d and cooldown>=%d held\n",
		time.Since(start).Seconds(), completed, executed, len(decisions), actions, launched, drained, maxStep, cooldown)
}

// burst fires one synchronous wave of concurrent queries and returns
// how many completed.
func burst(client *cluster.Client, templates []cluster.QueryTemplate, rng *rand.Rand, base int64) int {
	var wg sync.WaitGroup
	oks := make([]bool, burstSize)
	for i := 0; i < burstSize; i++ {
		sql := templates[rng.Intn(len(templates))].Instantiate(rng)
		wg.Add(1)
		go func(slot int, id int64, sql string) {
			defer wg.Done()
			if out := client.Run(id, sql); out.Err == nil {
				oks[slot] = true
			}
		}(i, base+int64(i), sql)
	}
	wg.Wait()
	n := 0
	for _, ok := range oks {
		if ok {
			n++
		}
	}
	return n
}

// lastReasons summarizes the tail of the decision ring for failure
// messages.
func lastReasons(ctl *autoscale.Controller, n int) string {
	ds := ctl.Decisions()
	if len(ds) > n {
		ds = ds[len(ds)-n:]
	}
	out := ""
	for _, d := range ds {
		out += fmt.Sprintf("[tick %d: %s] ", d.Tick, d.Reason)
	}
	return out
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalersmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
