// Command qactl is the federation client: it sends a query (or a
// generated workload) to a set of qanode servers using the chosen
// allocation mechanism and reports the outcome.
//
// Examples:
//
//	qactl -nodes 127.0.0.1:7001,127.0.0.1:7002 -sql "SELECT COUNT(*) FROM t00"
//	qactl -nodes ... -mechanism qa-nt -stats n-1a2b3c4d
//	qactl -nodes ... -members
//	qactl -nodes ... -sql "SELECT * FROM t00" -trace 7   # run traced, print span tree
//	qactl -nodes ... -trace 7                            # assemble spans already retained
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/qamarket/qamarket/internal/autoscale"
	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/trace"
)

func main() {
	var (
		nodeList  = flag.String("nodes", "", "comma-separated seed server addresses")
		sql       = flag.String("sql", "", "query to evaluate")
		mech      = flag.String("mechanism", "greedy", "greedy | qa-nt")
		period    = flag.Int64("period", 500, "resubmission period in ms")
		repeat    = flag.Int("repeat", 1, "times to run the query")
		gap       = flag.Duration("gap", 0, "wait between repeats")
		stats     = flag.String("stats", "", "print market stats of one node (ID or address) and exit")
		members   = flag.Bool("members", false, "print the live membership view and exit")
		refresh   = flag.Duration("refresh", 0, "membership view refresh period (0 = static seed view)")
		transport = flag.String("transport", "pooled", "rpc transport: pooled | fresh")
		hist      = flag.Bool("hist", false, "print per-op RPC latency histograms after the run")
		traceID   = flag.Int64("trace", 0, "trace ID: with -sql, run the query traced under this ID; alone, assemble and print the federation's retained spans for it")
		scaler    = flag.String("scaler", "", "print a qascale daemon's decision ring (base URL of its -metrics-addr) and exit")
	)
	flag.Parse()

	if *scaler != "" {
		if err := printScalerDecisions(*scaler); err != nil {
			die(err)
		}
		return
	}

	addrs := strings.Split(*nodeList, ",")
	if len(addrs) == 1 && addrs[0] == "" {
		die(fmt.Errorf("no -nodes given"))
	}
	var tracer *trace.Recorder
	if *traceID != 0 {
		tracer = trace.NewRecorder("client", 0, nil)
	}
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       addrs,
		Mechanism:   cluster.Mechanism(*mech),
		PeriodMs:    *period,
		Timeout:     30 * time.Second,
		Transport:   cluster.Transport(*transport),
		ViewRefresh: *refresh,
		Tracer:      tracer,
	})
	if err != nil {
		die(err)
	}
	defer client.Close()
	if *members {
		if err := client.RefreshView(); err != nil {
			die(err)
		}
		printMembers(client)
		return
	}
	if *stats != "" {
		st, err := client.Stats(*stats)
		if err != nil {
			die(err)
		}
		fmt.Printf("node %s: executed=%d offers=%d rejects=%d\n", *stats, st.Executed, st.Offers, st.Rejects)
		for sig, price := range st.Prices {
			fmt.Printf("  price %.4f  class %s\n", price, sig)
		}
		return
	}
	if *sql == "" {
		if *traceID != 0 {
			// Assemble whatever the federation still retains for the ID:
			// the trace was recorded by an earlier traced run.
			fmt.Print(trace.RenderTree(client.TraceSpans(*traceID)))
			return
		}
		die(fmt.Errorf("no -sql given"))
	}
	for i := 0; i < *repeat; i++ {
		qid := int64(i)
		if *traceID != 0 {
			// A traced run keeps one trace ID across repeats so the
			// assembled tree shows every round under distinct run roots.
			qid = *traceID
		}
		out := client.Run(qid, *sql)
		if out.Err != nil {
			die(out.Err)
		}
		fmt.Printf("query %d -> node %s (%s): %d rows, assign %.1f ms, exec %.1f ms, total %.1f ms (%d retries)\n",
			out.QueryID, out.Node, out.NodeAddr, out.Rows, out.AssignMs, out.ExecMs, out.TotalMs, out.Retries)
		if *gap > 0 && i+1 < *repeat {
			time.Sleep(*gap)
		}
	}
	if *traceID != 0 {
		fmt.Print(trace.RenderTree(client.TraceSpans(*traceID)))
	}
	if *hist {
		printLatencies(client)
	}
}

// printMembers renders the client's membership view: stable ID,
// address, gossiped state, incarnation, client breaker state, the
// advertised storage executor, and the advertised catalog digest.
func printMembers(client *cluster.Client) {
	fmt.Printf("%-14s %-22s %-8s %-5s %-6s %-9s %-11s %s\n",
		"ID", "ADDR", "STATE", "INC", "EPOCH", "BREAKER", "EXEC", "CATALOG")
	for _, m := range client.Members() {
		exec := m.Driver
		if exec == "" {
			exec = "-" // a node that predates the driver seam
		}
		fmt.Printf("%-14s %-22s %-8s %-5d %-6d %-9s %-11s %s\n",
			m.ID, m.Addr, m.State, m.Incarnation, m.Epoch, m.Breaker, exec, m.CatalogDigest)
	}
}

// printScalerDecisions fetches a qascale daemon's retained decision
// ring and renders each explainable record: smoothed signals, the
// water-filled target, and the clamped action with its reason.
func printScalerDecisions(base string) error {
	url := strings.TrimRight(base, "/") + "/decisions"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var decisions []autoscale.Decision
	if err := json.NewDecoder(resp.Body).Decode(&decisions); err != nil {
		return fmt.Errorf("parsing %s: %w", url, err)
	}
	fmt.Printf("%-5s %-9s %-4s %-7s %-7s %-7s %-7s %-4s %-4s %-7s %s\n",
		"TICK", "TIME", "MEM", "REJ~", "UNSOLD~", "PRICE~", "DEMAND~", "TGT", "ACT", "APPLIED", "REASON")
	for _, d := range decisions {
		s := d.Signals
		fmt.Printf("%-5d %-9s %-4d %-7.3f %-7.3f %-7.2f %-7.0f %-4d %-+4d %-7v %s\n",
			d.Tick, d.At.Format("15:04:05"), s.Members,
			s.SmoothedRejectRate, s.SmoothedUnsoldRate, s.SmoothedPriceIndex, s.SmoothedDemandMs,
			d.Target, d.Action, d.Applied, d.Reason)
	}
	return nil
}

// printLatencies renders the client's per-op, per-node RPC latency
// histograms.
func printLatencies(client *cluster.Client) {
	lat := client.Latencies()
	ops := make([]string, 0, len(lat))
	for op := range lat {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Println("rpc latency:")
	for _, op := range ops {
		nodes := make([]string, 0, len(lat[op]))
		for node := range lat[op] {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			fmt.Printf("  %-9s node %s: %s\n", op, node, lat[op][node])
		}
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qactl:", err)
	os.Exit(1)
}
