// Command execsmoke is the storage-driver soak `make ci` runs: an
// in-process federation where every node fronts a DIFFERENT executor —
// legacy row-at-a-time, vectorized columnar, and the fault-injecting
// mock — over fully replicated data, so the same query is answerable
// by any backend and every answer can be checked against a local
// oracle. Four invariants are asserted:
//
//  1. Executor parity through the wire: the row node and the vector
//     node, fetched through the binary frame lane, return cell-for-cell
//     identical results to the oracle for every query.
//  2. Mixed fleets interoperate: a market client over all three nodes
//     completes every query correctly, and gossip advertises each
//     member's executor name ("row", "vector", "mock:row").
//  3. The frame stream really streams: a FetchEach against a node with
//     a tiny FetchBatchRows delivers the result in multiple bounded
//     column blocks that reassemble to the oracle's rows.
//  4. At-most-once holds across executor faults: a glacial mock engine
//     (ExecDelay far past the client RPC timeout) forces retransmits
//     that the dedup window must absorb into exactly ONE execution,
//     and an injected engine fault surfaces as a typed terminal error
//     without the inner engine ever running.
//
// Everything is seeded; exit status 0 means every invariant held.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/driver"
	"github.com/qamarket/qamarket/internal/engine"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/sqldb"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "execsmoke: "+format+"\n", args...)
	os.Exit(1)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	die("timed out waiting for %s", what)
}

// render folds a result into a sorted multiset of row keys, the
// order-insensitive form all equality checks compare in.
func render(rows []sqldb.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = sqldb.RowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// oracle executes sql locally through the legacy driver — the engine
// of record every other executor is differential-tested against.
func oracle(d driver.Driver, sql string) []string {
	st, err := d.Prepare(sql)
	if err != nil {
		die("oracle prepare %q: %v", sql, err)
	}
	blk, err := st.Execute()
	if err != nil {
		die("oracle execute %q: %v", sql, err)
	}
	rows, err := blk.AppendRows(nil)
	if err != nil {
		die("oracle rows %q: %v", sql, err)
	}
	return render(rows)
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newClient(addrs []string, seed int64) *cluster.Client {
	c, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:    addrs,
		PeriodMs: 20, MaxRetries: 100,
		Timeout: 500 * time.Millisecond, BreakerThreshold: 100,
		AtMostOnce: true, ExecRetries: 8,
		Jitter: rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		die("client: %v", err)
	}
	return c
}

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(91))
	// Full replication: every relation on every node, identical rows,
	// so any node can answer any query and the oracle is always valid.
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 3, Tables: 5, Views: 6, RowsPerTable: 60,
		MinCopies: 3, MaxCopies: 3,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	ref := driver.NewLegacy(ds.DBs[0])

	// One executor per node: the heterogeneous fleet under test.
	rowDrv, err := engine.SelectDriver("row", ds.DBs[0])
	if err != nil {
		die("row driver: %v", err)
	}
	vecDrv, err := engine.SelectDriver("vector", ds.DBs[1])
	if err != nil {
		die("vector driver: %v", err)
	}
	mock := driver.NewMock(driver.NewLegacy(ds.DBs[2]), driver.MockConfig{})
	drvs := []driver.Driver{rowDrv, vecDrv, mock}

	var nodes []*cluster.Node
	var addrs []string
	for i, drv := range drvs {
		cfg := cluster.NodeConfig{
			Driver:         drv,
			Slowdown:       4,
			MsPerCostUnit:  0.02,
			PeriodMs:       20,
			GossipPeriodMs: 40,
			// Tiny batches on the vector node so phase 3 observes a
			// genuinely multi-frame stream.
			Market: market.DefaultConfig(2),
		}
		if i == 1 {
			cfg.FetchBatchRows = 16
		}
		if len(addrs) > 0 {
			cfg.Seeds = []string{addrs[0]}
		}
		n, err := cluster.StartNode("127.0.0.1:0", cfg)
		if err != nil {
			die("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}
	waitFor("full membership", 5*time.Second, func() bool {
		for _, n := range nodes {
			if len(n.Members()) != len(nodes) {
				return false
			}
		}
		return true
	})

	templates, err := ds.GenerateTemplates(5, 1, rng)
	if err != nil {
		die("templates: %v", err)
	}
	qrng := rand.New(rand.NewSource(92))
	sqls := make([]string, 24)
	for i := range sqls {
		sqls[i] = templates[i%len(templates)].Instantiate(qrng)
	}
	qid := int64(0)

	// Phase 1 — executor parity through the wire: fetch every query
	// from the row node and the vector node individually; both travel
	// the binary frame lane and both must equal the oracle.
	for i, name := range []string{"row", "vector"} {
		c := newClient(addrs[i:i+1], 93+int64(i))
		for _, sql := range sqls {
			qid++
			res, out := c.Fetch(qid, sql)
			if out.Err != nil {
				die("parity: %s node: %v", name, out.Err)
			}
			if want := oracle(ref, sql); !equal(render(res.Rows), want) {
				die("parity: %s node diverges from oracle on %q", name, sql)
			}
		}
		c.Close()
	}
	fmt.Printf("execsmoke: executor parity ok (%d queries x row+vector)\n", len(sqls))

	// Phase 2 — mixed federation: one market client over all three
	// executors; every query must complete and match the oracle, and
	// the client's gossip view must advertise each executor by name.
	mixed := newClient(addrs, 95)
	if err := mixed.RefreshView(); err != nil {
		die("mixed: refresh view: %v", err)
	}
	seen := map[string]bool{}
	for _, m := range mixed.Members() {
		seen[m.Driver] = true
	}
	for _, want := range []string{"row", "vector", "mock:row"} {
		if !seen[want] {
			die("mixed: gossip view missing executor %q (saw %v)", want, seen)
		}
	}
	for _, sql := range sqls {
		qid++
		res, out := mixed.Fetch(qid, sql)
		if out.Err != nil {
			die("mixed: query %d: %v", out.QueryID, out.Err)
		}
		if want := oracle(ref, sql); !equal(render(res.Rows), want) {
			die("mixed: federation diverges from oracle on %q", sql)
		}
	}
	fmt.Printf("execsmoke: mixed federation ok (%d queries, executors %d)\n", len(sqls), len(seen))

	// Phase 3 — the frame stream really streams: a wide scan against
	// the vector node (FetchBatchRows=16) must arrive as multiple
	// bounded column blocks that reassemble to the oracle's rows.
	vc := newClient(addrs[1:2], 96)
	scan := "SELECT id, k, v, grp FROM t00 WHERE v > 1.0"
	var got []sqldb.Row
	blocks := 0
	qid++
	out := vc.FetchEach(qid, scan, func(blk *cluster.ColBlock) error {
		blocks++
		var err error
		got, err = blk.AppendRows(got)
		return err
	})
	vc.Close()
	if out.Err != nil {
		die("stream: %v", out.Err)
	}
	if want := oracle(ref, scan); !equal(render(got), want) {
		die("stream: reassembled rows diverge from oracle (%d rows)", len(got))
	}
	if blocks < 2 {
		die("stream: %d rows arrived in %d block(s); want a multi-frame stream", len(got), blocks)
	}
	fmt.Printf("execsmoke: frame stream ok (%d rows in %d blocks)\n", len(got), blocks)

	// Phase 4a — executed-once under a glacial engine: a mock with
	// ExecDelay far past the RPC timeout forces the client to lose the
	// first reply and retransmit; the dedup window must absorb every
	// retransmit into exactly one inner execution.
	slowMock := driver.NewMock(driver.NewLegacy(ds.DBs[2]), driver.MockConfig{
		ExecDelay: 400 * time.Millisecond,
	})
	slow, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
		Driver:        slowMock,
		Slowdown:      4,
		MsPerCostUnit: 0.02,
		PeriodMs:      20,
		Market:        market.DefaultConfig(2),
	})
	if err != nil {
		die("slow node: %v", err)
	}
	defer slow.Close()
	sc, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:    []string{slow.Addr()},
		PeriodMs: 20, MaxRetries: 100,
		Timeout: 100 * time.Millisecond, ExecTimeoutFactor: 1,
		BreakerThreshold: 100,
		AtMostOnce:       true, ExecRetries: 16,
		Jitter: rand.New(rand.NewSource(97)),
	})
	if err != nil {
		die("slow client: %v", err)
	}
	qid++
	sout := sc.Run(qid, sqls[0])
	if sout.Err != nil {
		die("slow: query should complete via dedup replay, got %v", sout.Err)
	}
	if sout.Retries == 0 {
		die("slow: no retransmits happened; ExecDelay did not exceed the RPC timeout")
	}
	if got := slowMock.Executions(); got != 1 {
		die("slow: %d executions under retransmit, want exactly 1", got)
	}
	sc.Close()
	fmt.Printf("execsmoke: at-most-once ok (%d retransmit rounds, 1 execution)\n", sout.Retries)

	// Phase 4b — injected engine fault: FailNextExec makes the mock
	// node's next Execute fail AFTER admission. The client must surface
	// it as a typed terminal error, the inner engine must never run,
	// and the next query (fault burned off) must succeed.
	mc := newClient(addrs[2:3], 98)
	before := mock.Executions()
	mock.FailNextExec(1)
	qid++
	fout := mc.Run(qid, sqls[1])
	if fout.Err == nil {
		die("fault: injected engine fault did not surface")
	}
	if !strings.Contains(fout.Err.Error(), driver.ErrInjected.Error()) {
		die("fault: error %q does not carry the injected-fault message", fout.Err)
	}
	if got := mock.Executions(); got != before {
		die("fault: inner engine ran %d time(s) under an injected fault", got-before)
	}
	qid++
	if rout := mc.Run(qid, sqls[1]); rout.Err != nil {
		die("fault: resubmission after burned fault failed: %v", rout.Err)
	}
	mc.Close()
	mixed.Close()
	fmt.Printf("execsmoke: injected fault ok (typed error, zero executions)\n")

	fmt.Printf("execsmoke: all executor invariants held in %v\n", time.Since(start).Round(time.Millisecond))
}
