// Command qasim runs one federation-simulator experiment with a chosen
// allocation mechanism and workload, printing the response-time summary.
//
// Examples:
//
//	qasim -mechanism qa-nt -workload sinusoid -load 1.5
//	qasim -mechanism greedy -workload zipf -gap 1000 -queries 5000
//	qasim -compare -workload sinusoid -load 2.0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/qamarket/qamarket/internal/alloc"
	"github.com/qamarket/qamarket/internal/catalog"
	"github.com/qamarket/qamarket/internal/costmodel"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
	"github.com/qamarket/qamarket/internal/sim"
	"github.com/qamarket/qamarket/internal/workload"
)

func main() {
	var (
		mechName  = flag.String("mechanism", "qa-nt", "qa-nt | greedy | random | round-robin | bnqrd | two-random-probes")
		compare   = flag.Bool("compare", false, "run every mechanism on the same workload")
		wl        = flag.String("workload", "sinusoid", "sinusoid | zipf")
		nodes     = flag.Int("nodes", 100, "federation size")
		relations = flag.Int("relations", 1000, "catalog size")
		classes   = flag.Int("classes", 100, "query classes (zipf workload)")
		queries   = flag.Int("queries", 10000, "queries (zipf workload)")
		gap       = flag.Float64("gap", 1000, "mean inter-arrival ms per class (zipf workload)")
		load      = flag.Float64("load", 1.0, "average load as a fraction of capacity (sinusoid workload)")
		freq      = flag.Float64("freq", 0.05, "sinusoid frequency in Hz")
		duration  = flag.Int("duration", 60, "sinusoid duration in seconds")
		period    = flag.Int64("period", 500, "allocation period T in ms")
		seed      = flag.Int64("seed", 1, "RNG seed")
		saveTrace = flag.String("save-trace", "", "write the generated arrival stream to this CSV and exit")
		replay    = flag.String("replay", "", "replay a CSV arrival trace instead of generating one")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	p := catalog.Table3()
	p.Nodes = *nodes
	p.Relations = *relations
	p.HashJoinNodes = *nodes * 95 / 100
	cat, err := catalog.Generate(p, rng)
	if err != nil {
		die(err)
	}
	model := costmodel.New(cat)

	var templates []costmodel.Template
	var arrivals []workload.Arrival
	switch *wl {
	case "zipf":
		tp := workload.Table3Templates()
		tp.Classes = *classes
		templates, err = workload.GenerateTemplates(cat, model, tp, rng)
		if err != nil {
			die(err)
		}
		z := workload.Zipf{
			Classes: *classes, NumQueries: *queries, A: 1,
			MeanGapMs: *gap, MaxGapMs: 30000, OriginCount: *nodes,
		}
		arrivals, err = z.Generate(rng)
		if err != nil {
			die(err)
		}
	case "sinusoid":
		// Two-class setup of the first experiment set: Q1 everywhere,
		// Q2 on half the nodes.
		for _, n := range cat.Nodes {
			n.Holds[0] = true
			delete(n.Holds, 1)
		}
		for _, n := range cat.Nodes[:*nodes/2] {
			n.Holds[1] = true
		}
		templates = []costmodel.Template{
			{Class: 0, Relations: []int{0}, Selectivity: 1, Sort: true},
			{Class: 1, Relations: []int{1}, Selectivity: 1, Sort: true},
		}
		for i, target := range []float64{1000, 500} {
			best, _ := model.EstimateBest(templates[i])
			templates[i].CostScale = target / best
		}
		capacity := sim.EstimateCapacity(cat, templates, []float64{2, 1})
		fmt.Printf("estimated capacity: %.1f queries/s for the 2:1 blend\n", capacity)
		peak := *load * capacity * 3.1416
		s1 := workload.Sinusoid{Class: 0, Origin: -1, OriginCount: *nodes, Freq: *freq,
			PeakRate: peak * 2 / 3, Duration: int64(*duration) * 1000}
		s2 := workload.Sinusoid{Class: 1, Origin: -1, OriginCount: *nodes, Freq: *freq,
			PeakRate: peak / 3, PhaseDeg: 900, Duration: int64(*duration) * 1000}
		arrivals = append(s1.Generate(rng), s2.Generate(rng)...)
		workload.Sort(arrivals)
	default:
		die(fmt.Errorf("unknown workload %q", *wl))
	}
	if *replay != "" {
		arrivals, err = workload.LoadTrace(*replay)
		if err != nil {
			die(err)
		}
		workload.Sort(arrivals)
		fmt.Printf("replaying %d arrivals from %s\n", len(arrivals), *replay)
	}
	if *saveTrace != "" {
		if err := workload.SaveTrace(*saveTrace, arrivals); err != nil {
			die(err)
		}
		fmt.Printf("wrote %d arrivals to %s\n", len(arrivals), *saveTrace)
		return
	}
	fmt.Printf("workload: %d queries over %d nodes\n", len(arrivals), *nodes)

	names := []string{*mechName}
	if *compare {
		names = []string{"qa-nt", "greedy", "random", "round-robin", "bnqrd", "two-random-probes"}
	}
	for _, name := range names {
		mech := buildMechanism(name, *seed)
		if mech == nil {
			die(fmt.Errorf("unknown mechanism %q", name))
		}
		fed, err := sim.New(sim.Config{Catalog: cat, Templates: templates, PeriodMs: *period}, mech)
		if err != nil {
			die(err)
		}
		col, err := fed.Run(arrivals)
		if err != nil {
			die(err)
		}
		printSummary(name, col.Summarize())
	}
}

func buildMechanism(name string, seed int64) alloc.Mechanism {
	switch name {
	case "qa-nt":
		return alloc.NewQANT(market.DefaultConfig(1))
	case "greedy":
		return alloc.NewGreedy(nil, 0)
	case "random":
		return alloc.NewRandom(rand.New(rand.NewSource(seed)))
	case "round-robin":
		return alloc.NewRoundRobin()
	case "bnqrd":
		return alloc.NewBNQRD()
	case "two-random-probes":
		return alloc.NewTwoRandomProbes(rand.New(rand.NewSource(seed + 1)))
	default:
		return nil
	}
}

func printSummary(name string, s metrics.Summary) {
	fmt.Printf("%-18s mean=%8.1fms median=%8.1fms p95=%8.1fms max=%6dms done=%d dropped=%d resubmits/q=%.2f\n",
		name, s.MeanRespMs, s.MedianMs, s.P95Ms, s.MaxMs, s.Completed, s.Dropped, s.MeanResub)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qasim:", err)
	os.Exit(1)
}
