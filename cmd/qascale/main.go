// Command qascale is the market-driven autoscaler daemon: it polls
// every member of a running federation for per-period market telemetry
// (prices, trading failures, unsold supply), smooths the series, and
// launches or drains qanode replicas under first-class guardrails
// (warmup, cooldown, max-step, hysteresis bands, dry-run).
//
// The launch template names how one replica is started; {id} and
// {join} are substituted. Draining sends the youngest qascale-launched
// replica SIGTERM — qanode's handler runs the graceful drain path, so
// in-flight queries finish and the member leaves by gossip.
//
// Examples:
//
//	# observe only: every decision is computed, logged, and exposed,
//	# nothing is actuated
//	qascale -nodes 127.0.0.1:7001 -dry-run
//
//	# close the loop: scale between 1 and 6 replicas
//	qascale -nodes 127.0.0.1:7001 -min 1 -max 6 \
//	  -launch "./qanode -addr 127.0.0.1:0 -init data.sql -id {id} -join {join} -period 500"
//
//	# decisions, human-readable and machine-readable
//	curl http://localhost:9200/decisions
//	qactl -scaler http://localhost:9200
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"flag"

	"github.com/qamarket/qamarket/internal/autoscale"
	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/metrics"
)

func main() {
	var (
		nodeList    = flag.String("nodes", "", "comma-separated seed server addresses")
		refresh     = flag.Duration("refresh", 250*time.Millisecond, "membership view refresh period")
		interval    = flag.Duration("interval", 2*time.Second, "control tick period (poll, smooth, decide)")
		minN        = flag.Int("min", 1, "replica floor")
		maxN        = flag.Int("max", 8, "replica ceiling")
		capacityMs  = flag.Float64("capacity-ms", 500, "one replica's supply per market period, ms (set to the fleet's -period)")
		alpha       = flag.Float64("alpha", 0.3, "EWMA weight of the newest observation (0,1]")
		warmup      = flag.Int("warmup", 2, "ticks observed before the first action")
		cooldown    = flag.Int("cooldown", 3, "minimum ticks between actions")
		maxStep     = flag.Int("max-step", 1, "max replicas changed per decision")
		upReject    = flag.Float64("up-reject", 0.15, "scale-up band: smoothed rejection rate edge")
		upPrice     = flag.Float64("up-price", 2, "scale-up band: smoothed price index edge")
		downUnsold  = flag.Float64("down-unsold", 0.6, "scale-down band: smoothed unsold share edge")
		downReject  = flag.Float64("down-reject", 0.02, "scale-down band: smoothed rejection rate must sit below this")
		dryRun      = flag.Bool("dry-run", false, "compute, log, and expose decisions without actuating")
		launchTmpl  = flag.String("launch", "", "command template starting one replica; {id} and {join} are substituted (empty forces dry-run)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /decisions (JSON) on this address; empty disables")
		ticks       = flag.Int("ticks", 0, "exit after this many control ticks (0 = run until signalled)")
	)
	flag.Parse()

	addrs := strings.Split(*nodeList, ",")
	if len(addrs) == 1 && addrs[0] == "" {
		die(fmt.Errorf("no -nodes given"))
	}
	dry := *dryRun || *launchTmpl == ""
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       addrs,
		Timeout:     10 * time.Second,
		ViewRefresh: *refresh,
	})
	if err != nil {
		die(err)
	}
	defer client.Close()

	act := &procActuator{tmpl: *launchTmpl, join: strings.Join(addrs, ",")}
	ctl, err := autoscale.New(autoscale.Config{
		Min: *minN, Max: *maxN, CapacityMs: *capacityMs, Alpha: *alpha,
		Warmup: *warmup, Cooldown: *cooldown, MaxStep: *maxStep,
		UpRejectRate: *upReject, UpPriceIndex: *upPrice,
		DownUnsoldRate: *downUnsold, DownRejectRate: *downReject,
		DryRun: dry,
	}, autoscale.ClientSource{Client: client}, act)
	if err != nil {
		die(err)
	}

	var srv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			die(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(ctl))
		mux.Handle("/decisions", decisionsHandler(ctl))
		srv = &http.Server{Handler: mux}
		go srv.Serve(ln)
		fmt.Printf("qascale: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	mode := "actuating"
	if dry {
		mode = "dry-run"
	}
	fmt.Printf("qascale: %s, replicas %d..%d, tick every %s, cooldown %d ticks, max step %d\n",
		mode, *minN, *maxN, *interval, *cooldown, *maxStep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	done := 0
	for {
		select {
		case <-sig:
			fmt.Println("qascale: signalled, leaving launched replicas running")
			if srv != nil {
				srv.Close()
			}
			return
		case <-ticker.C:
			d := ctl.Tick()
			logDecision(d)
			done++
			if *ticks > 0 && done >= *ticks {
				if srv != nil {
					srv.Close()
				}
				return
			}
		}
	}
}

// logDecision renders one explainable record: inputs → smoothed
// signals → target → clamped action.
func logDecision(d autoscale.Decision) {
	act := "hold"
	switch {
	case d.Action > 0 && d.Applied:
		act = fmt.Sprintf("launch %+d", d.Action)
	case d.Action < 0 && d.Applied:
		act = fmt.Sprintf("drain %d", -d.Action)
	case d.Action != 0:
		act = fmt.Sprintf("withheld %+d", d.Action)
	}
	s := d.Signals
	fmt.Printf("tick %d: members=%d offers=%d rejects=%d unsold=%d | reject %.3f→%.3f unsold %.3f→%.3f price %.2f→%.2f demand %.0f→%.0fms | target %d (raw %d) current %d -> %s (%s)\n",
		d.Tick, s.Members, s.Offers, s.Rejects, s.Unsold,
		s.RejectRate, s.SmoothedRejectRate, s.UnsoldRate, s.SmoothedUnsoldRate,
		s.PriceIndex, s.SmoothedPriceIndex, s.DemandMs, s.SmoothedDemandMs,
		d.Target, d.RawTarget, d.Current, act, d.Reason)
}

// metricsHandler renders the controller's state in the Prometheus
// text exposition format (deterministically ordered, like the node's
// own /metrics).
func metricsHandler(ctl *autoscale.Controller) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p := metrics.NewPromWriter(w)
		launched, drained := ctl.Totals()
		p.Counter("qascale_replicas_launched_total", nil, float64(launched))
		p.Counter("qascale_replicas_drained_total", nil, float64(drained))
		d, ok := ctl.Last()
		if !ok {
			return
		}
		p.Counter("qascale_ticks_total", nil, float64(d.Tick+1))
		s := d.Signals
		p.Gauge("qascale_members", nil, float64(s.Members))
		p.Gauge("qascale_current_replicas", nil, float64(d.Current))
		p.Gauge("qascale_target_replicas", nil, float64(d.Target))
		p.Gauge("qascale_raw_target_replicas", nil, float64(d.RawTarget))
		p.Gauge("qascale_last_action", nil, float64(d.Action))
		p.Gauge("qascale_reject_rate", nil, s.RejectRate)
		p.Gauge("qascale_reject_rate_smoothed", nil, s.SmoothedRejectRate)
		p.Gauge("qascale_unsold_rate", nil, s.UnsoldRate)
		p.Gauge("qascale_unsold_rate_smoothed", nil, s.SmoothedUnsoldRate)
		p.Gauge("qascale_price_index", nil, s.PriceIndex)
		p.Gauge("qascale_price_index_smoothed", nil, s.SmoothedPriceIndex)
		p.Gauge("qascale_demand_ms", nil, s.DemandMs)
		p.Gauge("qascale_demand_ms_smoothed", nil, s.SmoothedDemandMs)
	})
}

// decisionsHandler serves the retained decision ring as JSON, oldest
// first — the machine-readable form qactl renders.
func decisionsHandler(ctl *autoscale.Controller) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ctl.Decisions())
	})
}

// procActuator starts replicas as child processes from the launch
// template and drains the youngest by SIGTERM (qanode's handler runs
// the graceful drain and leaves the membership by gossip).
type procActuator struct {
	tmpl string
	join string

	mu   sync.Mutex
	seq  int
	kids []*exec.Cmd
}

func (p *procActuator) Launch(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("qascale-r%02d", p.seq)
		argv := strings.Fields(strings.NewReplacer("{id}", id, "{join}", p.join).Replace(p.tmpl))
		if len(argv) == 0 {
			return fmt.Errorf("empty -launch template")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("launching %s: %w", id, err)
		}
		p.seq++
		p.kids = append(p.kids, cmd)
		go cmd.Wait() // reap on exit, whenever that is
		fmt.Printf("qascale: launched %s (pid %d)\n", id, cmd.Process.Pid)
	}
	return nil
}

func (p *procActuator) Drain(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < n; i++ {
		// Youngest first; skip children that already exited.
		var victim *exec.Cmd
		for len(p.kids) > 0 {
			k := p.kids[len(p.kids)-1]
			p.kids = p.kids[:len(p.kids)-1]
			if k.ProcessState == nil {
				victim = k
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("no qascale-launched replica left to drain")
		}
		if err := victim.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("draining pid %d: %w", victim.Process.Pid, err)
		}
		fmt.Printf("qascale: draining pid %d (SIGTERM, graceful)\n", victim.Process.Pid)
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qascale:", err)
	os.Exit(1)
}
