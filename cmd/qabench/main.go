// Command qabench regenerates every table and figure of the paper's
// evaluation section and prints them in the order they appear in the
// paper. Use -paper for the full Table 3 scale (slow) or the default
// quick scale for a fast qualitative run; -only restricts to a single
// experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/qamarket/qamarket/internal/experiments"
	"github.com/qamarket/qamarket/internal/plot"
)

func main() {
	paper := flag.Bool("paper", false, "run the full Table 3 scale (100 nodes, 10,000 queries)")
	seed := flag.Int64("seed", 1, "master RNG seed")
	only := flag.String("only", "", "comma-separated experiments to run: fig1,fig2,fig3,fig4,fig5a,fig5b,fig5c,fig6,fig7,table2,table3,static,partial")
	skipReal := flag.Bool("skip-real", false, "skip the real TCP cluster experiment (figure 7)")
	svgDir := flag.String("svg", "", "also render each figure as an SVG into this directory")
	parallel := flag.Int("parallel", 0, "worker-pool width for sweep points (0 = GOMAXPROCS, 1 = sequential; output is identical at any width)")
	driverName := flag.String("driver", "row", "storage executor for figure 7's real federation nodes: row | vector | mock:row | mock:vector")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	saveSVG := func(name string, c *plot.Chart, bars bool) {
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qabench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := c.WriteFile(path, bars); err != nil {
			fmt.Fprintf(os.Stderr, "qabench: rendering %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", path)
	}

	scale := experiments.Quick()
	if *paper {
		scale = experiments.Paper()
	}
	scale.Seed = *seed
	scale.Parallel = *parallel

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, sel := range strings.Split(*only, ",") {
			if strings.EqualFold(strings.TrimSpace(sel), name) {
				return true
			}
		}
		return false
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "qabench: %s: %v\n", name, err)
		os.Exit(1)
	}

	if want("fig1") {
		r := experiments.Figure1()
		fmt.Println("== Figure 1: performance optimization vs load balancing ==")
		fmt.Printf("LB : mean response %.1f ms, N1 busy until %.0f ms, N2 until %.0f ms\n",
			r.LBMeanMs, r.LBBusyN1Ms, r.LBBusyN2Ms)
		fmt.Printf("QA : mean response %.1f ms, N1 busy until %.0f ms, N2 until %.0f ms\n",
			r.QAMeanMs, r.QABusyN1Ms, r.QABusyN2Ms)
		fmt.Printf("LB is %.0f%% slower than QA (paper: 54%%)\n\n", (r.LBMeanMs/r.QAMeanMs-1)*100)
	}
	if want("fig2") {
		r := experiments.Figure2()
		fmt.Println("== Figure 2: aggregate demand, supply and consumption ==")
		fmt.Printf("aggregate demand  d = %v\n", r.Demand)
		fmt.Printf("LB supply %v (excess %v), Pareto optimal: %t\n", r.LBSupply, r.LBExcess, r.LBPareto)
		fmt.Printf("QA supply %v (excess %v), Pareto optimal: %t\n", r.QASupply, r.QAExcess, r.QAPareto)
		fmt.Printf("QA Pareto-dominates LB: %t\n\n", r.Dominates)
	}
	if want("fig3") {
		r, err := experiments.Figure3(scale)
		if err != nil {
			fail("figure 3", err)
		}
		fmt.Println("== Figure 3: example sinusoid workload (arrivals per half second) ==")
		printSeries("Q1", r.Q1PerHalfSecond)
		printSeries("Q2", r.Q2PerHalfSecond)
		saveSVG("figure3", &plot.Chart{
			Title: "Figure 3: sinusoid workload", XLabel: "time (s)", YLabel: "arrivals / 0.5 s",
			Series: []plot.Series{
				plot.IntSeries("Q1", r.Q1PerHalfSecond, 0.5),
				plot.IntSeries("Q2", r.Q2PerHalfSecond, 0.5),
			},
		}, false)
		fmt.Println()
	}
	if want("fig4") {
		r, err := experiments.Figure4(scale)
		if err != nil {
			fail("figure 4", err)
		}
		fmt.Println("== Figure 4: normalized avg response time (QA-NT = 1.00) ==")
		for _, name := range experiments.SortedKeys(r.Normalized) {
			fmt.Printf("  %-18s %6.2f  (mean %.0f ms)\n", name, r.Normalized[name], r.MeanMs[name])
		}
		s4, labels := plot.MapSeries("normalized mean response", r.Normalized)
		saveSVG("figure4", &plot.Chart{
			Title:  "Figure 4: normalized response time (" + strings.Join(labels, ", ") + ")",
			XLabel: "mechanism (alphabetical)", YLabel: "relative to QA-NT",
			Series: []plot.Series{s4},
		}, true)
		fmt.Println()
	}
	if want("fig5a") {
		r, err := experiments.Figure5a(scale)
		if err != nil {
			fail("figure 5a", err)
		}
		fmt.Println("== Figure 5a: Greedy/QA-NT response-time ratio vs load (fraction of capacity) ==")
		for _, p := range r.Points {
			fmt.Printf("  load %4.0f%%  greedy/qa-nt = %.3f\n", p.X*100, p.Y)
		}
		saveSVG("figure5a", pointsChart("Figure 5a: load sweep", "load (fraction of capacity)", r.Points), false)
		fmt.Println()
	}
	if want("fig5b") {
		r, err := experiments.Figure5b(scale)
		if err != nil {
			fail("figure 5b", err)
		}
		fmt.Println("== Figure 5b: Greedy/QA-NT ratio vs sinusoid frequency (80% load) ==")
		for _, p := range r.Points {
			fmt.Printf("  %.2f Hz  greedy/qa-nt = %.3f\n", p.X, p.Y)
		}
		saveSVG("figure5b", pointsChart("Figure 5b: frequency sweep", "frequency (Hz)", r.Points), false)
		fmt.Println()
	}
	if want("fig5c") {
		r, err := experiments.Figure5c(scale)
		if err != nil {
			fail("figure 5c", err)
		}
		q, g := r.TrackingError()
		fmt.Println("== Figure 5c: Q1 load following (per half-second) ==")
		printSeries("arrivals", r.Arrivals)
		printSeries("qa-nt   ", r.QANTDone)
		printSeries("greedy  ", r.GreedyDon)
		saveSVG("figure5c", &plot.Chart{
			Title: "Figure 5c: Q1 load following", XLabel: "time (s)", YLabel: "Q1 per 0.5 s",
			Series: []plot.Series{
				plot.IntSeries("arrivals", r.Arrivals, 0.5),
				plot.IntSeries("qa-nt executed", r.QANTDone, 0.5),
				plot.IntSeries("greedy executed", r.GreedyDon, 0.5),
			},
		}, false)
		fmt.Printf("mean |arrivals-executed|: qa-nt %.2f, greedy %.2f\n\n", q, g)
	}
	if want("fig6") {
		r, err := experiments.Figure6(scale)
		if err != nil {
			fail("figure 6", err)
		}
		fmt.Println("== Figure 6: Greedy/QA-NT ratio vs Zipf mean inter-arrival ==")
		for _, p := range r.Points {
			fmt.Printf("  gap %7.0f ms  greedy/qa-nt = %.3f\n", p.X, p.Y)
		}
		c6 := pointsChart("Figure 6: Zipf inter-arrival sweep", "mean inter-arrival (ms, log)", r.Points)
		c6.LogX = true
		saveSVG("figure6", c6, false)
		fmt.Println()
	}
	if want("table2") {
		fmt.Println("== Table 2: mechanism comparison ==")
		fmt.Print(experiments.RenderTable2())
		fmt.Println()
	}
	if want("table3") {
		st, err := experiments.Table3(scale)
		if err != nil {
			fail("table 3", err)
		}
		fmt.Println("== Table 3: realized environment statistics ==")
		fmt.Printf("  nodes=%d relations=%d hash-join nodes=%d\n", st.Nodes, st.Relations, st.HashJoinNodes)
		fmt.Printf("  mean CPU %.2f GHz (paper 2.3), IO %.1f MB/s (42.5), buffer %.1f MB (6)\n",
			st.MeanCPUGHz, st.MeanIOMBps, st.MeanBufferMB)
		fmt.Printf("  mean relation %.1f MB (10.5), mirrors/relation %.1f (5), relations/node %.1f (~50 at paper scale)\n",
			st.MeanRelationMB, st.MeanMirrors, st.RelationsPerNode)
		fmt.Printf("  classes=%d mean joins %.1f (24), mean best exec %.0f ms (2000)\n\n",
			st.Classes, st.MeanJoins, st.MeanBestExecMs)
	}
	if want("static") {
		r, err := experiments.StaticWorkload(scale, 0.8)
		if err != nil {
			fail("static", err)
		}
		fmt.Println("== Extension: static workload at 80% load (normalized to the Markov reference) ==")
		for _, name := range experiments.SortedKeys(r.Normalized) {
			fmt.Printf("  %-18s %6.2f  (mean %.0f ms)\n", name, r.Normalized[name], r.MeanMs[name])
		}
		fmt.Println()
	}
	if want("partial") {
		r, err := experiments.PartialAdoption(scale)
		if err != nil {
			fail("partial", err)
		}
		fmt.Println("== Extension: partial QA-NT adoption under 2x overload ==")
		for _, frac := range []float64{0, 0.5, 1.0} {
			fmt.Printf("  adoption %3.0f%%  mean %.0f ms\n", frac*100, r.MeanMs[frac])
		}
		fmt.Println()
	}
	if want("fig7") && !*skipReal {
		opt := experiments.DefaultFigure7()
		opt.Seed = *seed
		opt.Driver = *driverName
		r, err := experiments.Figure7(opt)
		if err != nil {
			fail("figure 7", err)
		}
		fmt.Println("== Figure 7: real TCP federation (5 heterogeneous nodes) ==")
		assign := map[string][]float64{}
		total := map[string][]float64{}
		var gaps []float64
		for _, run := range r.Runs {
			fmt.Printf("  %-7s gap=%-5v assign=%6.1f ms  total=%7.1f ms  exec=%6.1f ms  done=%d fail=%d spread=%v\n",
				run.Mechanism, run.Interarrival, run.MeanAssignMs, run.MeanTotalMs,
				run.MeanExecMs, run.Completed, run.Failed, run.PerNode)
			m := string(run.Mechanism)
			assign[m] = append(assign[m], run.MeanAssignMs)
			total[m] = append(total[m], run.MeanTotalMs)
			if m == "greedy" {
				gaps = append(gaps, float64(run.Interarrival.Milliseconds()))
			}
		}
		var f7 []plot.Series
		for _, m := range []string{"greedy", "qa-nt"} {
			f7 = append(f7,
				plot.Series{Name: m + " total", X: gaps, Y: total[m]},
				plot.Series{Name: m + " assign", X: gaps, Y: assign[m]},
			)
		}
		saveSVG("figure7", &plot.Chart{
			Title: "Figure 7: real federation", XLabel: "inter-arrival (ms)", YLabel: "ms",
			Series: f7,
		}, true)
		fmt.Println()
	}
}

// pointsChart builds the greedy/qa-nt ratio line chart shared by the
// sweep figures.
func pointsChart(title, xlabel string, points []experiments.Point) *plot.Chart {
	s := plot.Series{Name: "greedy / qa-nt"}
	for _, p := range points {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.Y)
	}
	parity := plot.Series{Name: "parity"}
	for _, p := range points {
		parity.X = append(parity.X, p.X)
		parity.Y = append(parity.Y, 1)
	}
	return &plot.Chart{
		Title: title, XLabel: xlabel, YLabel: "response-time ratio",
		Series: []plot.Series{s, parity},
	}
}

// printSeries renders an integer series as a compact sparkline-ish row.
func printSeries(label string, xs []int) {
	const maxCols = 80
	step := 1
	if len(xs) > maxCols {
		step = (len(xs) + maxCols - 1) / maxCols
	}
	peak := 1
	for _, v := range xs {
		if v > peak {
			peak = v
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for i := 0; i < len(xs); i += step {
		hi := 0
		for j := i; j < i+step && j < len(xs); j++ {
			if xs[j] > hi {
				hi = xs[j]
			}
		}
		idx := hi * (len(glyphs) - 1) / peak
		b.WriteRune(glyphs[idx])
	}
	fmt.Printf("  %s |%s| peak=%d\n", label, b.String(), peak)
}
