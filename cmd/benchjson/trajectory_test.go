package main

import (
	"encoding/json"
	"testing"
)

func sampleReport(stamp string, speedup float64) *report {
	return &report{
		GeneratedAt: stamp,
		GoVersion:   "go1.22",
		GOMAXPROCS:  8,
		Benchmarks:  []benchEntry{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}},
		Qabench:     qabenchTiming{Speedup: speedup},
		Transport:   transportTiming{Speedup: 2.5},
		Membership:  membershipTiming{JoinRounds: 3, EvictRounds: 7},
	}
}

// TestMergeTrajectoryAppends pins the history fix: regenerating the
// benchmark file used to overwrite every earlier run, so the committed
// "trajectory" only ever held one point. Each run must now append.
func TestMergeTrajectoryAppends(t *testing.T) {
	first := sampleReport("2026-01-01T00:00:00Z", 2.0)
	first.Trajectory = mergeTrajectory(nil, first)
	if len(first.Trajectory) != 1 {
		t.Fatalf("fresh history has %d rows, want 1", len(first.Trajectory))
	}
	data, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}

	second := sampleReport("2026-02-01T00:00:00Z", 3.0)
	second.Trajectory = mergeTrajectory(data, second)
	if len(second.Trajectory) != 2 {
		t.Fatalf("second run has %d rows, want 2", len(second.Trajectory))
	}
	if got := second.Trajectory[0].GeneratedAt; got != "2026-01-01T00:00:00Z" {
		t.Errorf("oldest row first: got %s", got)
	}
	if got := second.Trajectory[1]; got.GeneratedAt != "2026-02-01T00:00:00Z" || got.QabenchSpeedup != 3.0 {
		t.Errorf("newest row wrong: %+v", got)
	}
}

// TestMergeTrajectorySynthesizesOldSnapshot checks that a file written
// by the pre-trajectory layout (snapshot fields, no trajectory array)
// contributes its headline numbers as the first history row instead of
// being dropped.
func TestMergeTrajectorySynthesizesOldSnapshot(t *testing.T) {
	old := sampleReport("2025-12-01T00:00:00Z", 1.5)
	data, err := json.Marshal(old) // Trajectory nil: the old layout
	if err != nil {
		t.Fatal(err)
	}
	cur := sampleReport("2026-01-01T00:00:00Z", 2.0)
	rows := mergeTrajectory(data, cur)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want synthesized old + current", len(rows))
	}
	if rows[0].GeneratedAt != "2025-12-01T00:00:00Z" || rows[0].QabenchSpeedup != 1.5 {
		t.Errorf("synthesized row wrong: %+v", rows[0])
	}
	if rows[0].Benchmarks != 1 || rows[0].JoinRounds != 3 || rows[0].EvictRounds != 7 {
		t.Errorf("synthesized row lost snapshot fields: %+v", rows[0])
	}
}

// TestMergeTrajectoryFreshOnGarbage: a missing or corrupt previous file
// must start a one-row history, not fail the bench run.
func TestMergeTrajectoryFreshOnGarbage(t *testing.T) {
	cur := sampleReport("2026-01-01T00:00:00Z", 2.0)
	for _, prev := range [][]byte{nil, []byte("{truncated"), []byte("")} {
		rows := mergeTrajectory(prev, cur)
		if len(rows) != 1 || rows[0].GeneratedAt != cur.GeneratedAt {
			t.Errorf("prev %q: rows = %+v", prev, rows)
		}
	}
}

// TestBenchLineParsesThroughputColumn pins the row format the frame
// benchmark emits: SetBytes adds an MB/s column between ns/op and the
// -benchmem columns, which the regex must not swallow into B/op.
func TestBenchLineParsesThroughputColumn(t *testing.T) {
	cases := []struct {
		line              string
		mbps, bpo, allocs string
	}{
		{"BenchmarkFetchFrameRoundTrip-8   200  63822 ns/op  497.05 MB/s  8908 B/op  14 allocs/op", "497.05", "8908", "14"},
		{"BenchmarkFetchEncodingCompact-8  200  933079 ns/op  450978 B/op  1120 allocs/op", "", "450978", "1120"},
		{"BenchmarkFigure1  1  1115 ns/op", "", "", ""},
	}
	for _, tc := range cases {
		m := benchLine.FindStringSubmatch(tc.line)
		if m == nil {
			t.Fatalf("no match: %s", tc.line)
		}
		if m[4] != tc.mbps || m[5] != tc.bpo || m[6] != tc.allocs {
			t.Errorf("%s: MB/s=%q B/op=%q allocs=%q, want %q %q %q",
				tc.line, m[4], m[5], m[6], tc.mbps, tc.bpo, tc.allocs)
		}
	}
}
