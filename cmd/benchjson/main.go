// Command benchjson produces BENCH_qamarket.json, the repo's tracked
// benchmark trajectory: every figure/table regeneration bench, the
// hot-path micro-benchmarks (with allocs/op), and a timed qabench sweep
// run sequentially vs on the parallel worker pool. Run it via
// `make bench` from the repo root and commit the refreshed JSON so the
// numbers travel with the code they measure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/qamarket/qamarket/internal/experiments"
	"github.com/qamarket/qamarket/internal/membership"
)

type benchEntry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

type qabenchTiming struct {
	// Experiments is the -only selection the timing sweeps.
	Experiments  string  `json:"experiments"`
	SequentialMs float64 `json:"sequential_ms"` // -parallel 1
	ParallelMs   float64 `json:"parallel_ms"`   // -parallel 0 (GOMAXPROCS)
	Speedup      float64 `json:"speedup"`       // sequential / parallel
}

// transportTiming is the transport trajectory row: the same qaload
// closed-loop workload driven over the fresh-dial and pooled
// multiplexed transports.
type transportTiming struct {
	Clients   int     `json:"clients"`
	Queries   int     `json:"queries"`
	FreshQPS  float64 `json:"fresh_qps"`
	PooledQPS float64 `json:"pooled_qps"`
	Speedup   float64 `json:"speedup"` // pooled / fresh
}

// fetchTiming is the zero-copy framing trajectory row: the 1,000-row
// fetch round trip's steady-state allocation count and throughput on
// the binary frame lane, next to the compact-JSON encoding it replaced
// as the hot path (which cost ~1,120 allocs per fetch).
type fetchTiming struct {
	Rows               int     `json:"rows"`
	FrameAllocsPerOp   float64 `json:"frame_allocs_per_op"`
	FrameMBPerS        float64 `json:"frame_mb_per_s"`
	CompactAllocsPerOp float64 `json:"compact_allocs_per_op"`
}

// executorTiming is the storage-executor trajectory: the same filtered
// scans (1k/100k/1M input rows) and star join through the legacy
// row-at-a-time driver and the vectorized columnar engine, normalized
// to nanoseconds per input row. The acceptance bar for the vectorized
// executor is >= 3x on the 100k filtered scan.
type executorTiming struct {
	Series []executorRow `json:"series"`
}

type executorRow struct {
	Workload       string  `json:"workload"`
	InputRows      int     `json:"input_rows"`
	RowNsPerRow    float64 `json:"row_ns_per_row"`
	VectorNsPerRow float64 `json:"vector_ns_per_row"`
	Speedup        float64 `json:"speedup"` // row / vector
}

// membershipTiming is the gossip-convergence trajectory row: how many
// synchronous anti-entropy rounds a seeded n-node mesh needs to admit a
// joiner everywhere and to evict a crashed member. The simulation is
// deterministic for (nodes, seed), so drift in these numbers means the
// protocol changed, not the machine.
type membershipTiming struct {
	Nodes       int   `json:"nodes"`
	Seed        int64 `json:"seed"`
	JoinRounds  int   `json:"join_rounds"`
	EvictRounds int   `json:"evict_rounds"`
}

// federationTiming is the amortized-negotiation trajectory row: one
// 100-node closed-loop qaload workload run twice at equal offered load
// — full-fan-out negotiation vs batched CFPs + epoch-stamped bid
// caching + shard probing. The headline number is mean negotiate RPCs
// per completed query: ≈ view size unbatched, O(1) amortized.
type federationTiming struct {
	Nodes   int `json:"nodes"`
	Clients int `json:"clients"`
	Queries int `json:"queries"`
	// Negotiate RPCs per completed query, before and after.
	BaselineNegotiatePerQuery  float64 `json:"baseline_negotiate_per_query"`
	AmortizedNegotiatePerQuery float64 `json:"amortized_negotiate_per_query"`
	// p99 end-to-end latency at the same offered load, to show the
	// RPC savings didn't cost tail latency.
	BaselineP99Ms  float64 `json:"baseline_p99_ms"`
	AmortizedP99Ms float64 `json:"amortized_p99_ms"`
	// Where the saved RPCs went in the amortized run.
	BidCacheHits   float64 `json:"bid_cache_hits"`
	BatchCoalesced float64 `json:"batch_coalesced"`
	ShardSkips     float64 `json:"shard_skips"`
}

// elasticityTiming is the market-driven elasticity trajectory row: the
// same flash-crowd workload (quiet, arrival spike, quiet) driven over a
// static fleet and over one the autoscaler grows and shrinks from the
// market's own telemetry. The headline comparison is the spike phase's
// p99 — the static fleet saturates, the scaled one recruits supply —
// plus the controller's conduct (max step observed, cooldown kept).
type elasticityTiming struct {
	MaxNodes int `json:"max_nodes"`
	experiments.FlashCrowdResult
}

type report struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Benchmarks  []benchEntry     `json:"benchmarks"`
	Qabench     qabenchTiming    `json:"qabench"`
	Transport   transportTiming  `json:"transport"`
	Fetch       fetchTiming      `json:"fetch"`
	Executor    executorTiming   `json:"executor"`
	Membership  membershipTiming `json:"membership"`
	Federation  federationTiming `json:"federation"`
	Elasticity  elasticityTiming `json:"elasticity"`
	// Trajectory is the run history: one headline row per `make bench`,
	// oldest first. The snapshot fields above always describe the latest
	// run; earlier runs used to be overwritten, losing the trajectory
	// the file is named for.
	Trajectory []trajectoryEntry `json:"trajectory"`
}

// trajectoryEntry is one run's headline numbers, compact enough to
// accumulate across the repo's whole history.
type trajectoryEntry struct {
	GeneratedAt      string  `json:"generated_at"`
	GoVersion        string  `json:"go_version"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Benchmarks       int     `json:"benchmarks"`
	QabenchSpeedup   float64 `json:"qabench_speedup"`
	TransportSpeedup float64 `json:"transport_speedup"`
	JoinRounds       int     `json:"join_rounds"`
	EvictRounds      int     `json:"evict_rounds"`
	// The amortized-negotiation numbers (absent on rows that predate
	// them): negotiate RPCs per completed query on the 100-node
	// federation, full fan-out vs amortized, and the tail latencies
	// behind them.
	FedNodes                   int     `json:"fed_nodes,omitempty"`
	BaselineNegotiatePerQuery  float64 `json:"baseline_negotiate_per_query,omitempty"`
	AmortizedNegotiatePerQuery float64 `json:"amortized_negotiate_per_query,omitempty"`
	BaselineP99Ms              float64 `json:"baseline_p99_ms,omitempty"`
	AmortizedP99Ms             float64 `json:"amortized_p99_ms,omitempty"`
	// The binary-framing numbers (absent on rows that predate them):
	// the 1,000-row fetch round trip on the frame lane.
	FetchAllocsPerOp float64 `json:"fetch_allocs_per_op,omitempty"`
	FetchMBPerS      float64 `json:"fetch_mb_per_s,omitempty"`
	// The vectorized executor's speedup over the row driver on the 100k
	// filtered scan (absent on rows that predate the driver seam).
	VectorScanSpeedup float64 `json:"vector_scan_speedup,omitempty"`
	// The elasticity numbers (absent on rows that predate the
	// autoscaler): flash-crowd spike p99, static vs autoscaled, and the
	// replica ceiling the controller actually reached.
	FlashStaticP99Ms  float64 `json:"flash_static_p99_ms,omitempty"`
	FlashScaledP99Ms  float64 `json:"flash_scaled_p99_ms,omitempty"`
	FlashPeakReplicas int     `json:"flash_peak_replicas,omitempty"`
}

// entryOf compresses a report into its trajectory row.
func entryOf(r *report) trajectoryEntry {
	return trajectoryEntry{
		GeneratedAt:                r.GeneratedAt,
		GoVersion:                  r.GoVersion,
		GOMAXPROCS:                 r.GOMAXPROCS,
		Benchmarks:                 len(r.Benchmarks),
		QabenchSpeedup:             r.Qabench.Speedup,
		TransportSpeedup:           r.Transport.Speedup,
		JoinRounds:                 r.Membership.JoinRounds,
		EvictRounds:                r.Membership.EvictRounds,
		FedNodes:                   r.Federation.Nodes,
		BaselineNegotiatePerQuery:  r.Federation.BaselineNegotiatePerQuery,
		AmortizedNegotiatePerQuery: r.Federation.AmortizedNegotiatePerQuery,
		BaselineP99Ms:              r.Federation.BaselineP99Ms,
		AmortizedP99Ms:             r.Federation.AmortizedP99Ms,
		FetchAllocsPerOp:           r.Fetch.FrameAllocsPerOp,
		FetchMBPerS:                r.Fetch.FrameMBPerS,
		VectorScanSpeedup:          vectorScanSpeedup(r),
		FlashStaticP99Ms:           r.Elasticity.StaticPeakP99Ms,
		FlashScaledP99Ms:           r.Elasticity.ScaledPeakP99Ms,
		FlashPeakReplicas:          r.Elasticity.PeakReplicas,
	}
}

// vectorScanSpeedup pulls the 100k filtered scan's row/vector ratio out
// of the executor series for the trajectory headline.
func vectorScanSpeedup(r *report) float64 {
	for _, row := range r.Executor.Series {
		if row.Workload == "scan" && row.InputRows == 100_000 {
			return row.Speedup
		}
	}
	return 0
}

// mergeTrajectory appends the current run to the history found in the
// previous report file. A pre-trajectory snapshot (older file layout)
// is not lost: its headline numbers are synthesized into the first
// row. Unreadable or absent previous content starts a fresh history.
func mergeTrajectory(prev []byte, cur *report) []trajectoryEntry {
	var old report
	if err := json.Unmarshal(prev, &old); err == nil {
		if len(old.Trajectory) == 0 && old.GeneratedAt != "" {
			old.Trajectory = []trajectoryEntry{entryOf(&old)}
		}
		return append(old.Trajectory, entryOf(cur))
	}
	return []trajectoryEntry{entryOf(cur)}
}

// benchLine matches `go test -bench` output rows, with or without the
// SetBytes throughput column and the -benchmem columns.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_qamarket.json", "output path for the benchmark report")
	quick := flag.Bool("quick", false, "run every bench at -benchtime=1x (CI smoke; noisier numbers)")
	stamp := flag.String("timestamp", "", "RFC3339 generated_at stamp (empty: now); measurement code never reads the clock for it")
	flag.Parse()
	if *stamp == "" {
		*stamp = time.Now().UTC().Format(time.RFC3339)
	}

	var entries []benchEntry
	// The figure/table regenerations take seconds per iteration; a single
	// iteration each is the trajectory's wall-clock row. BenchmarkFigure7
	// stands up the real TCP cluster and still fits.
	figs, err := runBench(`^(BenchmarkFigure|BenchmarkTable|BenchmarkAblation)`, "1x")
	if err != nil {
		fatal(err)
	}
	entries = append(entries, figs...)
	// The micro-benchmarks are cheap, so give them enough iterations for
	// stable ns/op and steady-state allocs/op (pools warm after the first
	// iteration).
	microTime := "200ms"
	if *quick {
		microTime = "1x"
	}
	micro, err := runBench(
		`^(BenchmarkDesimEngine|BenchmarkSimDispatch|BenchmarkExactSolver|BenchmarkAgentPeriod|BenchmarkSupplySolvers|BenchmarkTraceOverhead)$`,
		microTime)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, micro...)
	// The transport micro-benchmarks: per-RPC cost fresh vs pooled
	// (sequential and 8-way concurrent) and the fetch-path result
	// round trip with allocs/op (tagged and compact JSON, binary frames).
	transportBenches, err := runBenchPkg("./internal/cluster",
		`^(BenchmarkTransportRPC|BenchmarkTransportConcurrent|BenchmarkFetchEncoding|BenchmarkFetchFrameRoundTrip)`, microTime)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, transportBenches...)
	fetch := fetchTiming{Rows: 1000}
	for _, e := range transportBenches {
		switch e.Name {
		case "BenchmarkFetchFrameRoundTrip":
			if e.AllocsPerOp != nil {
				fetch.FrameAllocsPerOp = *e.AllocsPerOp
			}
			if e.MBPerS != nil {
				fetch.FrameMBPerS = *e.MBPerS
			}
		case "BenchmarkFetchEncodingCompact":
			if e.AllocsPerOp != nil {
				fetch.CompactAllocsPerOp = *e.AllocsPerOp
			}
		}
	}

	// The executor benchmarks: row vs vectorized driver over the same
	// data, normalized to ns per scanned input row.
	execBenches, err := runBenchPkg("./internal/engine", `^BenchmarkExecutor`, microTime)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, execBenches...)
	executor, err := executorSeries(execBenches)
	if err != nil {
		fatal(err)
	}

	// The membership-convergence benchmark (wall clock per simulated
	// churn cycle) plus the deterministic round counts behind it.
	memberBench, err := runBenchPkg("./internal/membership",
		`^BenchmarkMembershipConvergence$`, microTime)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, memberBench...)
	const memberNodes, memberSeed = 16, 11
	conv, err := membership.SimulateConvergence(memberNodes, memberSeed)
	if err != nil {
		fatal(err)
	}

	timing, err := timeQabench()
	if err != nil {
		fatal(err)
	}
	transport, err := timeTransport()
	if err != nil {
		fatal(err)
	}
	federation, err := timeFederation(*quick)
	if err != nil {
		fatal(err)
	}
	elasticity, err := timeElasticity(*quick)
	if err != nil {
		fatal(err)
	}

	r := report{
		GeneratedAt: *stamp,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchmarks:  entries,
		Qabench:     timing,
		Transport:   transport,
		Fetch:       fetch,
		Executor:    executor,
		Membership: membershipTiming{
			Nodes: memberNodes, Seed: memberSeed,
			JoinRounds: conv.JoinRounds, EvictRounds: conv.EvictRounds,
		},
		Federation: federation,
		Elasticity: elasticity,
	}
	prev, _ := os.ReadFile(*out)
	r.Trajectory = mergeTrajectory(prev, &r)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, qabench speedup %.2fx, pooled transport %.2fx, frame fetch %.0f allocs/op at %.0f MB/s, vectorized 100k scan %.2fx, membership join/evict %d/%d rounds, %d-node negotiate/query %.1f -> %.2f, flash-crowd p99 %.0f -> %.0f ms at %d replicas, %d trajectory rows on GOMAXPROCS=%d)\n",
		*out, len(entries), r.Qabench.Speedup, r.Transport.Speedup,
		r.Fetch.FrameAllocsPerOp, r.Fetch.FrameMBPerS, vectorScanSpeedup(&r),
		r.Membership.JoinRounds, r.Membership.EvictRounds,
		r.Federation.Nodes, r.Federation.BaselineNegotiatePerQuery,
		r.Federation.AmortizedNegotiatePerQuery,
		r.Elasticity.StaticPeakP99Ms, r.Elasticity.ScaledPeakP99Ms,
		r.Elasticity.PeakReplicas, len(r.Trajectory), r.GOMAXPROCS)
}

// executorBench matches the executor benchmark names:
// BenchmarkExecutor<Workload><InputRows>/<driver>.
var executorBench = regexp.MustCompile(`^BenchmarkExecutor([A-Za-z]+)(\d+)/(row|vector)$`)

// executorSeries folds the raw executor benchmark entries into the
// per-workload ns_per_row comparison rows.
func executorSeries(entries []benchEntry) (executorTiming, error) {
	type agg struct{ rowNs, vecNs float64 }
	rows := map[string]*agg{}
	var order []string
	for _, e := range entries {
		m := executorBench.FindStringSubmatch(e.Name)
		if m == nil {
			continue
		}
		key := strings.ToLower(m[1]) + ":" + m[2]
		a := rows[key]
		if a == nil {
			a = &agg{}
			rows[key] = a
			order = append(order, key)
		}
		n, _ := strconv.Atoi(m[2])
		if n == 0 {
			return executorTiming{}, fmt.Errorf("executor bench %s has zero input rows", e.Name)
		}
		if m[3] == "row" {
			a.rowNs = e.NsPerOp / float64(n)
		} else {
			a.vecNs = e.NsPerOp / float64(n)
		}
	}
	var t executorTiming
	for _, key := range order {
		a := rows[key]
		if a.rowNs == 0 || a.vecNs == 0 {
			return executorTiming{}, fmt.Errorf("executor series %s missing a driver leg", key)
		}
		parts := strings.SplitN(key, ":", 2)
		n, _ := strconv.Atoi(parts[1])
		t.Series = append(t.Series, executorRow{
			Workload: parts[0], InputRows: n,
			RowNsPerRow: a.rowNs, VectorNsPerRow: a.vecNs,
			Speedup: a.rowNs / a.vecNs,
		})
	}
	if len(t.Series) == 0 {
		return executorTiming{}, fmt.Errorf("no executor benchmark rows parsed")
	}
	return t, nil
}

// runBench executes `go test -bench` in the repo root and parses the
// result rows.
func runBench(pattern, benchtime string) ([]benchEntry, error) {
	return runBenchPkg(".", pattern, benchtime)
}

// runBenchPkg executes `go test -bench` for one package pattern.
func runBenchPkg(pkg, pattern, benchtime string) ([]benchEntry, error) {
	cmd := exec.Command("go", "test", "-run=NONE", "-bench="+pattern,
		"-benchtime="+benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench=%s: %w", pattern, err)
	}
	var entries []benchEntry
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := benchEntry{Name: strings.TrimSuffix(m[1], "-"+strconv.Itoa(runtime.GOMAXPROCS(0)))}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			mbps, _ := strconv.ParseFloat(m[4], 64)
			e.MBPerS = &mbps
		}
		if m[5] != "" {
			bpo, _ := strconv.ParseFloat(m[5], 64)
			apo, _ := strconv.ParseFloat(m[6], 64)
			e.BytesPerOp, e.AllocsPerOp = &bpo, &apo
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark rows matched %s", pattern)
	}
	return entries, nil
}

// timeQabench builds cmd/qabench once and times the sweep-heavy figures
// sequentially vs on the default pool width.
func timeQabench() (qabenchTiming, error) {
	dir, err := os.MkdirTemp(".", "benchjson-")
	if err != nil {
		return qabenchTiming{}, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "qabench")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qabench").CombinedOutput(); err != nil {
		return qabenchTiming{}, fmt.Errorf("building qabench: %v\n%s", err, out)
	}
	const only = "fig4,fig5a,fig5b,fig6"
	run := func(parallel int) (float64, error) {
		start := time.Now()
		cmd := exec.Command(bin, "-skip-real", "-only", only,
			"-parallel", strconv.Itoa(parallel))
		if out, err := cmd.CombinedOutput(); err != nil {
			return 0, fmt.Errorf("qabench -parallel %d: %v\n%s", parallel, err, out)
		}
		return float64(time.Since(start)) / float64(time.Millisecond), nil
	}
	seq, err := run(1)
	if err != nil {
		return qabenchTiming{}, err
	}
	par, err := run(0)
	if err != nil {
		return qabenchTiming{}, err
	}
	return qabenchTiming{
		Experiments:  only,
		SequentialMs: seq,
		ParallelMs:   par,
		Speedup:      seq / par,
	}, nil
}

// timeTransport builds cmd/qaload once and drives the same closed-loop
// workload (8 clients, self-hosted 3-node federation) over both
// transports, recording queries/sec for the trajectory. The query is a
// cheap fixed COUNT so the run measures the transport, not the
// execution engine — an execution-bound mix hides the dial cost behind
// the nodes' serial executors.
func timeTransport() (transportTiming, error) {
	const clients, queries = 8, 400
	dir, err := os.MkdirTemp(".", "benchjson-")
	if err != nil {
		return transportTiming{}, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "qaload")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qaload").CombinedOutput(); err != nil {
		return transportTiming{}, fmt.Errorf("building qaload: %v\n%s", err, out)
	}
	run := func(transport string) (float64, error) {
		cmd := exec.Command(bin, "-selfnodes", "3", "-clients", strconv.Itoa(clients),
			"-queries", strconv.Itoa(queries), "-sql", "SELECT COUNT(*) FROM t00",
			"-mspercost", "0.0001", "-period", "25", "-transport", transport, "-json")
		out, err := cmd.Output()
		if err != nil {
			return 0, fmt.Errorf("qaload -transport %s: %v", transport, err)
		}
		var rep struct {
			Completed int64   `json:"completed"`
			Failed    int64   `json:"failed"`
			QPS       float64 `json:"qps"`
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			return 0, fmt.Errorf("parsing qaload report: %w", err)
		}
		if rep.Failed > 0 || rep.Completed != queries {
			return 0, fmt.Errorf("qaload -transport %s: %d/%d completed, %d failed",
				transport, rep.Completed, queries, rep.Failed)
		}
		return rep.QPS, nil
	}
	fresh, err := run("fresh")
	if err != nil {
		return transportTiming{}, err
	}
	pooled, err := run("pooled")
	if err != nil {
		return transportTiming{}, err
	}
	return transportTiming{
		Clients: clients, Queries: queries,
		FreshQPS: fresh, PooledQPS: pooled, Speedup: pooled / fresh,
	}, nil
}

// timeFederation drives the 100-node gossip-joined federation with the
// same open-loop workload twice: full fan-out (every CFP probes every
// member, no batching, no caching) and amortized (batched CFPs, the
// epoch-stamped bid cache, shard probing). Open mode offers queries at
// a fixed rate regardless of completions, so the two legs see equal
// offered load and the negotiate-RPC and tail-latency columns compare
// directly; a closed loop would throttle the baseline's arrivals behind
// its own slow negotiation.
func timeFederation(quick bool) (federationTiming, error) {
	nodes, clients, rate, duration := 100, 16, 25, 12*time.Second
	if quick {
		nodes, duration = 20, 6*time.Second
	}
	queries := int(float64(rate) * duration.Seconds())
	dir, err := os.MkdirTemp(".", "benchjson-")
	if err != nil {
		return federationTiming{}, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "qaload")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qaload").CombinedOutput(); err != nil {
		return federationTiming{}, fmt.Errorf("building qaload: %v\n%s", err, out)
	}
	common := []string{
		"-selfnodes", strconv.Itoa(nodes), "-clients", strconv.Itoa(clients),
		"-mode", "open", "-rate", strconv.Itoa(rate), "-duration", duration.String(),
		"-mechanism", "qa-nt", "-mspercost", "0.0001", "-period", "250",
		"-tables", "20", "-views", "30", "-mix", "8", "-joins", "2",
		"-join", "-refresh", "100ms", "-settle", "2s", "-json",
	}
	type fedReport struct {
		Completed   int64              `json:"completed"`
		Failed      int64              `json:"failed"`
		Total       map[string]float64 `json:"total_ms"`
		RPCPerQuery map[string]float64 `json:"rpc_per_query"`
		Amort       map[string]float64 `json:"amortization"`
	}
	runOnce := func(extra []string) (fedReport, error) {
		var rep fedReport
		out, err := exec.Command(bin, append(append([]string(nil), common...), extra...)...).Output()
		if err != nil {
			return rep, fmt.Errorf("qaload %v: %v", extra, err)
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			return rep, fmt.Errorf("parsing qaload report: %w", err)
		}
		// Open mode fires ~rate*duration queries; the exact count drifts
		// with ticker scheduling, so accept a run that kept most of them.
		if rep.Failed > 0 || rep.Completed < int64(queries*8/10) {
			return rep, fmt.Errorf("qaload %v: %d/~%d completed, %d failed",
				extra, rep.Completed, queries, rep.Failed)
		}
		return rep, nil
	}
	// The 100-node open-loop leg runs the federation near its supply
	// limit on purpose; on a machine already degraded by the preceding
	// benchmark half hour, a handful of queries can starve past their
	// retry limit. That is machine noise, not a measurement — each
	// attempt is a fresh self-hosted federation, so retry a clean run
	// before declaring the trajectory unmeasurable.
	run := func(extra ...string) (rep fedReport, err error) {
		for attempt := 1; ; attempt++ {
			rep, err = runOnce(extra)
			if err == nil || attempt == 3 {
				return rep, err
			}
			fmt.Printf("federation leg attempt %d (%v); retrying\n", attempt, err)
		}
	}
	baseline, err := run("-noshard")
	if err != nil {
		return federationTiming{}, err
	}
	amortized, err := run("-batch", "2ms", "-bidcache", "250ms")
	if err != nil {
		return federationTiming{}, err
	}
	return federationTiming{
		Nodes: nodes, Clients: clients, Queries: queries,
		BaselineNegotiatePerQuery:  baseline.RPCPerQuery["negotiate"],
		AmortizedNegotiatePerQuery: amortized.RPCPerQuery["negotiate"],
		BaselineP99Ms:              baseline.Total["p99_ms"],
		AmortizedP99Ms:             amortized.Total["p99_ms"],
		BidCacheHits:               amortized.Amort["bid_cache_hits_total"],
		BatchCoalesced:             amortized.Amort["batch_coalesced_total"],
		ShardSkips:                 amortized.Amort["shard_skips_total"],
	}, nil
}

// timeElasticity runs the flash-crowd experiment as a library call —
// the pattern of the membership row. The spike's p99 comparison is a
// real-time measurement on a shared machine, so a leg where the scaled
// federation failed to beat the static one is retried on a fresh seed
// before the trajectory calls regression.
func timeElasticity(quick bool) (elasticityTiming, error) {
	opt := experiments.DefaultFlashCrowd()
	if quick {
		opt.WavesPerPhase = 5
	}
	var res experiments.FlashCrowdResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		opt.Seed = experiments.DefaultFlashCrowd().Seed + int64(attempt)
		res, err = experiments.FlashCrowd(opt)
		if err != nil {
			return elasticityTiming{}, err
		}
		if res.ScaledPeakP99Ms < res.StaticPeakP99Ms {
			break
		}
		fmt.Printf("flash-crowd attempt %d: scaled p99 %.0f ms did not beat static %.0f ms; retrying\n",
			attempt+1, res.ScaledPeakP99Ms, res.StaticPeakP99Ms)
	}
	return elasticityTiming{MaxNodes: opt.MaxNodes, FlashCrowdResult: res}, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
