// Command tracesmoke is the observability smoke test `make ci` runs:
// it stands up an in-process 2-node federation over localhost TCP,
// runs one traced query, assembles the cross-process span tree from
// the client and both server rings, and asserts the full lifecycle is
// present — client run/negotiate/execute spans with the servers'
// solve/queue/exec spans parented under them across the wire. It also
// scrapes one node's Prometheus exposition and checks the market
// telemetry made it out.
//
// Exit status 0 means every assertion held; any failure prints the
// offending tree or scrape and exits 1.
package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/trace"
)

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(17))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 2, Tables: 4, Views: 6, RowsPerTable: 40,
		MinCopies: 2, MaxCopies: 2,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	var nodes []*cluster.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:            ds.DBs[i],
			Slowdown:      1 + float64(i),
			MsPerCostUnit: 0.01,
			PeriodMs:      25,
			Market:        market.DefaultConfig(1),
		})
		if err != nil {
			die("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}

	tracer := trace.NewRecorder("client", 0, nil)
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:     addrs,
		Mechanism: cluster.MechQANT,
		PeriodMs:  25,
		Timeout:   5 * time.Second,
		Tracer:    tracer,
	})
	if err != nil {
		die("client: %v", err)
	}
	defer client.Close()

	const qid = 7
	out := client.Run(qid, "SELECT * FROM "+ds.Relations[0])
	if out.Err != nil {
		die("traced query: %v", out.Err)
	}

	spans := client.TraceSpans(qid)
	byName := map[string]int{}
	parents := map[string]trace.Span{}
	for _, s := range spans {
		byName[s.Name]++
		parents[s.ID] = s
	}
	rendered := trace.RenderTree(spans)
	for _, want := range []string{"run", "negotiate", "execute", "solve", "queue", "exec"} {
		if byName[want] == 0 {
			fmt.Fprint(os.Stderr, rendered)
			die("span tree has no %q span (%d spans total)", want, len(spans))
		}
	}
	// Both nodes answered the call-for-proposals; the winner executed.
	if byName["solve"] != 2 {
		fmt.Fprint(os.Stderr, rendered)
		die("want 2 solve spans (one per node), got %d", byName["solve"])
	}
	clientSpans, serverSpans := 0, 0
	crossLinks := 0
	for _, s := range spans {
		if s.Origin == "client" {
			clientSpans++
		} else {
			serverSpans++
			if p, ok := parents[s.Parent]; ok && p.Origin == "client" {
				crossLinks++
			}
		}
	}
	if clientSpans == 0 || serverSpans == 0 {
		fmt.Fprint(os.Stderr, rendered)
		die("tree not cross-process: %d client spans, %d server spans", clientSpans, serverSpans)
	}
	if crossLinks == 0 {
		fmt.Fprint(os.Stderr, rendered)
		die("no server span parents under a client span")
	}

	// The exposition endpoint must render the executed query and the
	// market telemetry for the node that won the allocation.
	var winner *cluster.Node
	for _, n := range nodes {
		if n.ID() == out.Node {
			winner = n
		}
	}
	if winner == nil {
		die("winning node %s not found", out.Node)
	}
	rec := httptest.NewRecorder()
	winner.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	scrape := rec.Body.String()
	for _, want := range []string{
		"qa_queries_executed_total",
		"qa_op_handle_ms_bucket",
		"qa_market_price{",
		"qa_market_offers_total",
	} {
		if !strings.Contains(scrape, want) {
			fmt.Fprint(os.Stderr, scrape)
			die("exposition missing %q", want)
		}
	}

	fmt.Printf("tracesmoke: OK — %d spans (%d client, %d server, %d cross-process links) in %v\n",
		len(spans), clientSpans, serverSpans, crossLinks, time.Since(start).Round(time.Millisecond))
	fmt.Print(rendered)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesmoke: "+format+"\n", args...)
	os.Exit(1)
}
