// Command chaossmoke is the query-protection soak `make ci` runs: an
// in-process federation behind faultnet proxies driven through four
// fault phases — clean baseline, saturating overload with deadlines,
// asymmetric partition windows, and a node crash with failover — while
// every query outcome is classified and three invariants are asserted
// at the end:
//
//  1. No query executes twice: the nodes' executed counters sum to
//     exactly the number of completed queries (at-most-once held, and
//     no shed query secretly ran).
//  2. No accepted query is lost: zero hard failures across all phases;
//     every non-completed query carries a typed shed/expired error.
//  3. Shedding is observable: the overload phase produced typed
//     refusals, not timeouts or breaker trips.
//
// The fault schedule is deterministic — faults flip at fixed query
// indices and per-connection faultnet plans are pure functions of the
// connection index — so a failure reproduces exactly. Exit status 0
// means every invariant held.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/faultnet"
	"github.com/qamarket/qamarket/internal/market"
)

// tally aggregates classified query outcomes across all phases.
type tally struct {
	completed atomic.Int64
	shed      atomic.Int64
	expired   atomic.Int64
	failed    atomic.Int64
}

// classify folds one Run outcome into the tally, treating typed
// protection errors as shed work and anything else as a hard failure.
func (t *tally) classify(phase string, out cluster.Outcome) {
	switch {
	case out.Err == nil:
		t.completed.Add(1)
	case errors.Is(out.Err, cluster.ErrExpired):
		t.expired.Add(1)
	case errors.Is(out.Err, cluster.ErrOverloaded), errors.Is(out.Err, cluster.ErrRetryBudget):
		t.shed.Add(1)
	default:
		t.failed.Add(1)
		fmt.Fprintf(os.Stderr, "chaossmoke: %s: query %d hard failure: %v\n", phase, out.QueryID, out.Err)
	}
}

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(61))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 3, Tables: 6, Views: 8, RowsPerTable: 40,
		MinCopies: 2, MaxCopies: 3,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	// Deliberately small capacity: one executor each, two admitted work
	// requests, a two-deep queue — so the overload phase saturates with
	// single-digit workers instead of hundreds.
	var nodes []*cluster.Node
	var proxies []*faultnet.Proxy
	for i := 0; i < 3; i++ {
		n, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:            ds.DBs[i],
			Slowdown:      8 + 2*float64(i),
			MsPerCostUnit: 0.02,
			PeriodMs:      20,
			MaxInflight:   2,
			MaxQueue:      2,
			Market:        market.DefaultConfig(1),
		})
		if err != nil {
			die("node %d: %v", i, err)
		}
		defer n.Close()
		p, err := faultnet.Start("127.0.0.1:0", n.Addr(), nil)
		if err != nil {
			die("proxy %d: %v", i, err)
		}
		defer p.Close()
		nodes = append(nodes, n)
		proxies = append(proxies, p)
	}
	addrs := []string{proxies[0].Addr(), proxies[1].Addr(), proxies[2].Addr()}

	templates, err := ds.GenerateTemplates(6, 1, rng)
	if err != nil {
		die("templates: %v", err)
	}
	// Keep only queries at least two nodes can evaluate: a join is
	// feasible only where ALL its relations are co-located, so even
	// with 2 copies per relation some joins live on a single node —
	// and the fault phases need every query to survive one outage.
	qrng := rand.New(rand.NewSource(62))
	var sqls []string
	for tries := 0; len(sqls) < 96 && tries < 4096; tries++ {
		sql := templates[tries%len(templates)].Instantiate(qrng)
		feasible := 0
		for i := 0; i < 3; i++ {
			if _, err := ds.DBs[i].Explain(sql); err == nil {
				feasible++
			}
		}
		if feasible >= 2 {
			sqls = append(sqls, sql)
		}
	}
	if len(sqls) < 96 {
		die("only %d/96 generated queries are feasible on 2+ nodes", len(sqls))
	}

	var counts tally
	var qid atomic.Int64

	// The soak client: at-most-once, so a lost reply is retransmitted
	// into the server's dedup window instead of renegotiated into a
	// possible double execution. Greedy allocation, not QA-NT: these
	// deliberately slow nodes would exceed a 20ms market period's
	// supply and never offer, and the soak's subject is the protection
	// layer, not price dynamics.
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:    addrs,
		PeriodMs: 20, MaxBackoffMs: 160, MaxRetries: 300,
		Timeout: 250 * time.Millisecond, BreakerThreshold: 2,
		BreakerCooldown: 300 * time.Millisecond,
		AtMostOnce:      true, ExecRetries: 8,
		Jitter: rand.New(rand.NewSource(63)),
	})
	if err != nil {
		die("client: %v", err)
	}
	defer client.Close()

	// Phase 1 — baseline: a clean federation must complete everything.
	for i := 0; i < 10; i++ {
		counts.classify("baseline", client.Run(qid.Add(1), sqls[i]))
	}
	if got := counts.completed.Load(); got != 10 {
		die("baseline: %d/10 completed, shed=%d expired=%d failed=%d",
			got, counts.shed.Load(), counts.expired.Load(), counts.failed.Load())
	}
	fmt.Printf("chaossmoke: baseline ok (%d queries)\n", counts.completed.Load())

	// Phase 2 — overload: eight closed-loop workers with an end-to-end
	// deadline against one deliberately glacial single-executor node
	// (own dataset, so its executor shares nothing with the soak
	// federation). A single query's execution burns a large slice of the
	// 300ms deadline, so with eight workers the backlog arithmetic
	// guarantees typed expired sheds at negotiate, and the tiny
	// MaxInflight gate guarantees typed overload refusals — anything
	// that is neither completed nor typed-shed is an invariant
	// violation.
	ods, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 1, Tables: 4, Views: 6, RowsPerTable: 40,
		MinCopies: 1, MaxCopies: 1,
	}, rng)
	if err != nil {
		die("overload dataset: %v", err)
	}
	slow, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
		DB:            ods.DBs[0],
		Slowdown:      60,
		MsPerCostUnit: 0.02,
		PeriodMs:      20,
		MaxInflight:   2,
		MaxQueue:      2,
		Market:        market.DefaultConfig(1),
	})
	if err != nil {
		die("overload node: %v", err)
	}
	defer slow.Close()
	otemplates, err := ods.GenerateTemplates(4, 1, rng)
	if err != nil {
		die("overload templates: %v", err)
	}
	before := counts.snapshot()
	var wg sync.WaitGroup
	oc, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:    []string{slow.Addr()},
		PeriodMs: 20, MaxRetries: 300,
		Timeout: 250 * time.Millisecond, BreakerThreshold: 100,
		AtMostOnce: true, ExecRetries: 8,
		QueryTimeout: 300 * time.Millisecond,
		RetryBudget:  200, RetryBurst: 64,
		Jitter: rand.New(rand.NewSource(64)),
	})
	if err != nil {
		die("overload client: %v", err)
	}
	orng := rand.New(rand.NewSource(66))
	osqls := make([]string, 24)
	for i := range osqls {
		osqls[i] = otemplates[i%len(otemplates)].Instantiate(orng)
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 3; q++ {
				counts.classify("overload", oc.Run(qid.Add(1), osqls[3*w+q]))
			}
		}(w)
	}
	wg.Wait()
	oc.Close()
	od := counts.delta(before)
	if od.shed+od.expired == 0 {
		die("overload: 24 queries against a saturated node produced no typed sheds (completed=%d failed=%d)", od.completed, od.failed)
	}
	if od.failed > 0 {
		die("overload: %d hard failures; refusals must be typed, not broken", od.failed)
	}
	fmt.Printf("chaossmoke: overload ok (completed=%d shed=%d expired=%d)\n", od.completed, od.shed, od.expired)

	// Phase 3 — severed replies: a dedicated one-node lane whose proxy
	// truncates every first execute reply after one byte. The client's
	// retransmit must be answered from the node's dedup window — the
	// executed-once invariant at the end proves no query ran twice.
	// Connection arithmetic (fresh transport, one node): each query is
	// conn triples [negotiate, execute (truncated), retransmit].
	sp, err := faultnet.Start("127.0.0.1:0", nodes[0].Addr(), func(conn int) faultnet.Plan {
		if conn%3 == 1 {
			return faultnet.Plan{TruncateReplyAfter: 1}
		}
		return faultnet.Plan{}
	})
	if err != nil {
		die("sever proxy: %v", err)
	}
	defer sp.Close()
	dc, err := cluster.NewClient(cluster.ClientConfig{
		Addrs: []string{sp.Addr()}, Transport: cluster.TransportFresh,
		PeriodMs: 20, Timeout: 2 * time.Second,
		AtMostOnce: true, ExecRetries: 4,
		Jitter: rand.New(rand.NewSource(65)),
	})
	if err != nil {
		die("sever client: %v", err)
	}
	// This lane sees only node 0, so queries must come from relations it
	// actually hosts (the dataset places only 2 copies of each).
	tabs := ds.DBs[0].Tables()
	before = counts.snapshot()
	for i := 0; i < 3; i++ {
		counts.classify("severed-reply", dc.Run(qid.Add(1), "SELECT * FROM "+tabs[i%len(tabs)]))
	}
	dc.Close()
	sd := counts.delta(before)
	if sd.completed != 3 {
		die("severed-reply: %d/3 completed (shed=%d expired=%d failed=%d)", sd.completed, sd.shed, sd.expired, sd.failed)
	}
	fmt.Printf("chaossmoke: severed replies ok (%d retransmits deduped)\n", sd.completed)

	// Phase 4 — partition + crash + failover, on the soak client. Node 1
	// drops into a one-way partition that heals; node 2 then "crashes"
	// (all streams severed, new dials refused) and later recovers. Every
	// relation has at least two copies, so nothing is infeasible and
	// every query must still complete.
	before = counts.snapshot()
	for i := 0; i < 24; i++ {
		switch i {
		case 4:
			proxies[1].Partition(faultnet.ClientToServer)
		case 10:
			proxies[1].Heal()
		case 14:
			proxies[2].Sever()
			proxies[2].SetRefuse(true)
		case 20:
			proxies[2].SetRefuse(false)
		}
		counts.classify("partition+crash", client.Run(qid.Add(1), sqls[50+i]))
	}
	pd := counts.delta(before)
	if pd.completed != 24 {
		die("partition+crash: %d/24 completed (shed=%d expired=%d failed=%d)", pd.completed, pd.shed, pd.expired, pd.failed)
	}
	fmt.Printf("chaossmoke: partition+crash ok (%d queries through the faults)\n", pd.completed)

	// Global invariants over every phase.
	executed := slow.Executed()
	for _, n := range nodes {
		executed += n.Executed()
	}
	completed := counts.completed.Load()
	if int64(executed) != completed {
		die("INVARIANT: nodes executed %d queries but clients completed %d — a query ran twice or shed work executed", executed, completed)
	}
	if failed := counts.failed.Load(); failed != 0 {
		die("INVARIANT: %d accepted queries lost to untyped failures", failed)
	}
	fmt.Printf("chaossmoke: ok in %v — completed=%d shed=%d expired=%d, executed-once=%d\n",
		time.Since(start).Round(time.Millisecond), completed, counts.shed.Load(), counts.expired.Load(), executed)
}

// snapshot and delta let phases assert over their own slice of the
// shared tally.
type snap struct{ completed, shed, expired, failed int64 }

func (t *tally) snapshot() snap {
	return snap{t.completed.Load(), t.shed.Load(), t.expired.Load(), t.failed.Load()}
}

func (t *tally) delta(s snap) snap {
	now := t.snapshot()
	return snap{now.completed - s.completed, now.shed - s.shed, now.expired - s.expired, now.failed - s.failed}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaossmoke: "+format+"\n", args...)
	os.Exit(1)
}
