// Command membersmoke is the membership smoke test `make ci` runs: it
// stands up an in-process 3-node federation over localhost TCP, joins a
// 4th node into the live market, crashes one founding member, and
// asserts the gossip layer converges on every step — the surviving
// nodes' tables and a dynamic client's view must all agree, and the
// late joiner must actually receive query allocations.
//
// Exit status 0 means every assertion held; any failure prints the
// divergent state and exits 1.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
)

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(17))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: 4, Tables: 6, Views: 10, RowsPerTable: 60,
		MinCopies: 3, MaxCopies: 4,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	startNode := func(i int, id string, seeds []string, slowdown float64) *cluster.Node {
		n, err := cluster.StartNode("127.0.0.1:0", cluster.NodeConfig{
			DB:                 ds.DBs[i],
			Slowdown:           slowdown,
			MsPerCostUnit:      0.01,
			PeriodMs:           25,
			NodeID:             id,
			Seeds:              seeds,
			GossipPeriodMs:     20,
			SuspectAfterRounds: 3,
			EvictAfterRounds:   3,
			MembershipSeed:     int64(i) + 1,
		})
		if err != nil {
			die("node %s: %v", id, err)
		}
		return n
	}

	// Phase 1: a founding 3-node federation converges from one seed.
	n0 := startNode(0, "n0", nil, 4)
	defer n0.Close()
	n1 := startNode(1, "n1", []string{n0.Addr()}, 4)
	defer n1.Close()
	n2 := startNode(2, "n2", []string{n0.Addr()}, 4)
	defer n2.Close()
	nodes := []*cluster.Node{n0, n1, n2}
	waitFor(5*time.Second, func() bool {
		for _, n := range nodes {
			if len(liveIDs(n)) != 3 {
				return false
			}
		}
		return true
	}, func() { dumpTables(nodes) }, "founding federation never converged to 3 live members")
	fmt.Printf("membersmoke: 3-node federation converged in %v\n", time.Since(start).Round(time.Millisecond))

	// A dynamic client seeded with a single address must discover the
	// whole federation.
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:       []string{n0.Addr()},
		Mechanism:   cluster.MechGreedy,
		PeriodMs:    25,
		MaxRetries:  50,
		Timeout:     2 * time.Second,
		ViewRefresh: 20 * time.Millisecond,
	})
	if err != nil {
		die("client: %v", err)
	}
	defer client.Close()
	waitFor(5*time.Second, func() bool { return len(clientLive(client)) == 3 },
		func() { dumpView(client) }, "client view never discovered the 3 founders")

	// Phase 2: a 4th, faster node joins the live market and must start
	// winning allocations with no client restart.
	joinStart := time.Now()
	n3 := startNode(3, "n3", []string{n0.Addr()}, 1)
	defer n3.Close()
	nodes = append(nodes, n3)
	waitFor(5*time.Second, func() bool {
		for _, n := range nodes {
			if !liveIDs(n)["n3"] {
				return false
			}
		}
		return clientLive(client)["n3"]
	}, func() { dumpTables(nodes); dumpView(client) }, "late joiner n3 never converged everywhere")
	fmt.Printf("membersmoke: n3 joined and converged in %v\n", time.Since(joinStart).Round(time.Millisecond))

	templates, err := ds.GenerateTemplates(4, 1, rng)
	if err != nil {
		die("templates: %v", err)
	}
	joinerHits, completed := 0, 0
	for qi := 0; qi < 20; qi++ {
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			die("query %d: %v", qi, out.Err)
		}
		completed++
		if out.Node == "n3" {
			joinerHits++
		}
	}
	if joinerHits == 0 {
		die("the late joiner n3 received none of %d allocations", completed)
	}
	fmt.Printf("membersmoke: joiner n3 took %d/%d queries\n", joinerHits, completed)

	// Phase 3: crash a founder (no drain, no goodbye). The failure
	// detector must evict it and the client view must follow.
	crashStart := time.Now()
	n1.CloseNow()
	survivors := []*cluster.Node{n0, n2, n3}
	waitFor(10*time.Second, func() bool {
		for _, n := range survivors {
			if liveIDs(n)["n1"] {
				return false
			}
		}
		return !clientHas(client, "n1")
	}, func() { dumpTables(survivors); dumpView(client) }, "crashed n1 never evicted everywhere")
	fmt.Printf("membersmoke: n1 crash detected and evicted in %v\n", time.Since(crashStart).Round(time.Millisecond))

	after := 0
	for qi := 100; qi < 112; qi++ {
		out := client.Run(int64(qi), templates[qi%len(templates)].Instantiate(rng))
		if out.Err != nil {
			continue // relations hosted only on n1 fail legitimately
		}
		if out.Node == "n1" {
			die("query %d allocated to the evicted n1", qi)
		}
		after++
	}
	if after < 8 {
		die("only %d/12 queries completed after the crash", after)
	}
	fmt.Printf("membersmoke: OK (%d post-crash queries served) in %v\n",
		after, time.Since(start).Round(time.Millisecond))
}

func liveIDs(n *cluster.Node) map[string]bool {
	out := make(map[string]bool)
	for _, m := range n.Members() {
		if m.State.Live() {
			out[m.ID] = true
		}
	}
	return out
}

func clientLive(c *cluster.Client) map[string]bool {
	out := make(map[string]bool)
	for _, m := range c.Members() {
		if m.State == "alive" || m.State == "suspect" {
			out[m.ID] = true
		}
	}
	return out
}

func clientHas(c *cluster.Client, id string) bool {
	for _, m := range c.Members() {
		if m.ID == id {
			return true
		}
	}
	return false
}

func waitFor(d time.Duration, cond func() bool, dump func(), msg string) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	dump()
	die("%s", msg)
}

func dumpTables(nodes []*cluster.Node) {
	for _, n := range nodes {
		fmt.Fprintf(os.Stderr, "table of %s:\n", n.ID())
		for _, m := range n.Members() {
			fmt.Fprintf(os.Stderr, "  %-4s %-22s %-8s inc=%d hb=%d\n",
				m.ID, m.Addr, m.State, m.Incarnation, m.Heartbeat)
		}
	}
}

func dumpView(c *cluster.Client) {
	fmt.Fprintln(os.Stderr, "client view:")
	for _, m := range c.Members() {
		fmt.Fprintf(os.Stderr, "  %-4s %-22s %-8s inc=%d breaker=%s\n",
			m.ID, m.Addr, m.State, m.Incarnation, m.Breaker)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "membersmoke: "+format+"\n", args...)
	os.Exit(1)
}
