// Command scalesmoke is the 100-node amortized-negotiation smoke
// `make ci` runs: a gossip-joined in-process federation driven with a
// closed-loop star-query mix through a membership churn window, with
// the amortization layers (batched CFPs, the epoch-stamped bid cache,
// per-class shard probing) all enabled. Three invariants are asserted
// at the end:
//
//  1. Cached admission happened: the bid cache served at least one
//     query straight to execute (hits > 0), and shard probing excluded
//     at least one provably infeasible node (skips > 0).
//  2. No query executes twice: the nodes' executed counters — churned
//     nodes included — sum to exactly the number of completed queries,
//     so cache-admitted and batch-negotiated queries obey the same
//     at-most-once contract as fully negotiated ones.
//  3. No query is lost: every query completes; churn of data-less
//     members must not strand or break in-flight work.
//
// The topology, dataset, workload, and churn points are all seeded, so
// a failure reproduces. Exit status 0 means every invariant held.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qamarket/qamarket/internal/cluster"
	"github.com/qamarket/qamarket/internal/market"
	"github.com/qamarket/qamarket/internal/metrics"
)

const (
	nodes    = 100
	queries  = 120
	workers  = 8
	periodMs = 50
)

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(17))
	ds, err := cluster.GenerateDataset(cluster.DatasetParams{
		Nodes: nodes, Tables: 20, Views: 30, RowsPerTable: 10,
		MinCopies: 2, MaxCopies: 3,
	}, rng)
	if err != nil {
		die("dataset: %v", err)
	}
	var fleet []*cluster.Node
	var addrs []string
	for i := 0; i < nodes; i++ {
		cfg := cluster.NodeConfig{
			DB:            ds.DBs[i],
			Slowdown:      1 + 3*float64(i)/float64(nodes-1),
			MsPerCostUnit: 0.0001,
			PeriodMs:      periodMs,
			Market:        market.DefaultConfig(1),
			NodeID:        fmt.Sprintf("scale-%03d", i),
		}
		if i > 0 {
			cfg.Seeds = []string{addrs[0]}
		}
		n, err := cluster.StartNode("127.0.0.1:0", cfg)
		if err != nil {
			die("node %d: %v", i, err)
		}
		defer n.Close()
		fleet = append(fleet, n)
		addrs = append(addrs, n.Addr())
	}

	templates, err := ds.GenerateTemplates(8, 2, rng)
	if err != nil {
		die("templates: %v", err)
	}

	// Greedy allocation, not QA-NT: the mix concentrates every class on
	// its 1-3 holders, and market supply races there retry for whole
	// periods with unbounded variance — the smoke's subject is the
	// amortization machinery, not price dynamics (same call as
	// chaossmoke). The cache, batcher, and prober run identically under
	// both mechanisms.
	client, err := cluster.NewClient(cluster.ClientConfig{
		Addrs:     addrs,
		Mechanism: cluster.MechGreedy,
		PeriodMs:  periodMs, MaxRetries: 300,
		Timeout:     2 * time.Second,
		ViewRefresh: 100 * time.Millisecond,
		BatchWindow: 2 * time.Millisecond,
		BidCacheTTL: 300 * time.Millisecond,
		AtMostOnce:  true, ExecRetries: 4,
		Jitter: rand.New(rand.NewSource(18)),
	})
	if err != nil {
		die("client: %v", err)
	}
	defer client.Close()

	// Wait for gossip to spread every member's catalog filter to the
	// client, so shard probing starts from a converged view instead of
	// a race against the settle phase.
	converged := false
	for wait := 0; wait < 100; wait++ {
		withFilter := 0
		members := client.Members()
		for _, m := range members {
			if m.CatalogFilter != "" {
				withFilter++
			}
		}
		if len(members) == nodes && withFilter == nodes {
			converged = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !converged {
		die("catalog filters did not converge to all %d members in 10s", nodes)
	}
	fmt.Printf("scalesmoke: %d nodes up, filters converged in %v\n", nodes, time.Since(start).Round(time.Millisecond))

	// Churn victims: data-less members. Their departure exercises
	// membership-driven invalidation and view pruning without making
	// any query class infeasible.
	var churn []int
	for i, db := range ds.DBs {
		if len(db.Tables())+len(db.Views()) == 0 {
			churn = append(churn, i)
		}
		if len(churn) == 2 {
			break
		}
	}
	if len(churn) < 2 {
		die("dataset left no data-less nodes to churn")
	}

	var completed, failed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(19 + int64(w)))
			for {
				id := next.Add(1)
				if id > queries {
					return
				}
				if id == queries/2 {
					// Mid-run churn: two members leave while queries are in
					// flight on every other worker.
					fleet[churn[0]].Close()
					fleet[churn[1]].Close()
				}
				sql := templates[wrng.Intn(len(templates))].Instantiate(wrng)
				if out := client.Run(id, sql); out.Err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "scalesmoke: query %d failed: %v\n", id, out.Err)
				} else {
					completed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	health := client.Health()
	hits := health[metrics.BidCacheHitsTotal]
	skips := health[metrics.ShardSkipsTotal]
	if failed.Load() != 0 {
		die("INVARIANT: %d/%d queries failed; churn of data-less members must not lose work", failed.Load(), queries)
	}
	if hits == 0 {
		die("INVARIANT: bid cache served no queries (misses=%.0f) — cached admission is dead", health[metrics.BidCacheMissesTotal])
	}
	if skips == 0 {
		die("INVARIANT: shard probing excluded no nodes despite converged filters")
	}
	var executed int
	for _, n := range fleet {
		executed += n.Executed()
	}
	if int64(executed) != completed.Load() {
		die("INVARIANT: nodes executed %d queries but the client completed %d — a query ran twice or was lost", executed, completed.Load())
	}
	fmt.Printf("scalesmoke: ok in %v — completed=%d executed-once=%d cache hits=%.0f invalidations=%.0f batch windows=%.0f coalesced=%.0f shard skips=%.0f\n",
		time.Since(start).Round(time.Millisecond), completed.Load(), executed,
		hits, health[metrics.BidCacheInvalidationsTotal],
		health[metrics.BatchWindowsTotal], health[metrics.BatchCoalescedTotal], skips)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalesmoke: "+format+"\n", args...)
	os.Exit(1)
}
