GO ?= go

.PHONY: all build test vet race bench benchsmoke loadsmoke membersmoke tracesmoke chaossmoke scalesmoke fuzzsmoke execsmoke scalersmoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The resilience/chaos tests are written to be race-clean; CI runs the
# whole tree under the detector.
race:
	$(GO) test -race ./...

# bench regenerates BENCH_qamarket.json — the committed benchmark
# trajectory (figure wall-clocks, hot-path ns/op + allocs/op, the
# sequential-vs-parallel qabench timing, and the 100-node federation
# row: negotiate RPCs per completed query, full fan-out vs amortized).
bench:
	$(GO) run ./cmd/benchjson

# benchsmoke just proves every benchmark still compiles and runs.
benchsmoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# loadsmoke drives a tiny qaload run against a self-hosted in-process
# federation: the load generator, pooled transport, and latency
# histograms all exercised end to end in a couple of seconds.
loadsmoke:
	$(GO) run ./cmd/qaload -selfnodes 2 -clients 4 -queries 24 -mix 3 -mspercost 0.005 -period 25

# membersmoke exercises dynamic membership end to end: a 3-node
# federation converges from one seed, a 4th node joins the live market
# (and receives allocations), one founder is crashed, and gossip must
# evict it from every surviving table and the client view.
membersmoke:
	$(GO) run ./cmd/membersmoke

# tracesmoke runs one traced query through a 2-node federation and
# asserts the assembled cross-process span tree (client run/negotiate/
# execute over server solve/queue/exec) plus the winner's Prometheus
# exposition.
tracesmoke:
	$(GO) run ./cmd/tracesmoke

# chaossmoke soaks the query-protection layer under deterministic
# faults: overload sheds with typed refusals, severed replies are
# answered from the dedup window, partitions and a node crash fail
# over — and no query may execute twice or vanish untyped. Run under
# the race detector: the protection paths are all concurrency.
chaossmoke:
	$(GO) run -race ./cmd/chaossmoke

# fuzzsmoke runs the frame-decoder fuzzer briefly on every CI run: the
# binary lane's malformed-input promise ("error, never panic, never
# unbounded allocation") plus the committed crasher corpus as
# regression seeds. Five seconds finds shallow decoder regressions;
# run `go test -fuzz FuzzFrameDecode ./internal/cluster` unbounded
# when touching frame.go.
fuzzsmoke:
	$(GO) test ./internal/cluster -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 5s

# execsmoke soaks the storage-driver seam: a federation whose nodes
# front different executors (row, vector, mock) is checked for
# cell-level parity against a local oracle, multi-frame streaming,
# gossip-advertised executor names, and at-most-once execution under
# injected engine faults.
execsmoke:
	$(GO) run ./cmd/execsmoke

# scalesmoke stands up the full 100-node gossip-joined federation with
# every amortization layer on (batched CFPs, epoch-stamped bid cache,
# per-class shard probing), churns two members mid-run, and asserts
# cached admission happened and no query executed twice or was lost.
scalesmoke:
	$(GO) run ./cmd/scalesmoke

# scalersmoke closes the telemetry loop end to end: rejection pressure
# against a single founder must make the autoscaler recruit replicas —
# every decision bounded by max-step and spaced by the cooldown — then
# a quiet glut must drain them gracefully, with executed-once preserved
# across the launched and drained recruits.
scalersmoke:
	$(GO) run ./cmd/scalersmoke

ci: build vet test race benchsmoke loadsmoke membersmoke tracesmoke chaossmoke scalesmoke execsmoke fuzzsmoke scalersmoke
