GO ?= go

.PHONY: all build test vet race bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The resilience/chaos tests are written to be race-clean; CI runs the
# whole tree under the detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

ci: build vet test race
